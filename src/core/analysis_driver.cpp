#include "core/analysis_driver.h"

#include <chrono>
#include <fstream>
#include <ostream>
#include <sstream>

#include <map>
#include <set>

#include "analysis/dsg_printer.h"
#include "analysis/trace.h"
#include "core/fixit.h"
#include "crash/crashsim.h"
#include "interp/instrumenter.h"
#include "interp/interp.h"
#include "ir/parser.h"
#include "ir/printer.h"
#include "ir/verifier.h"
#include "obs/metrics.h"
#include "obs/tracer.h"
#include "pmem/pool.h"
#include "runtime/dynamic_checker.h"
#include "support/str.h"
#include "support/thread_pool.h"

namespace deepmc::core {

namespace {

// Driver totals are sums over units of deterministic per-unit results;
// they are identical across runs and --jobs values (kStable).

obs::Counter& units_total() {
  static obs::Counter c = obs::registry().counter(
      "driver.units_total", obs::Volatility::kStable, "units analyzed");
  return c;
}

obs::Counter& units_failed() {
  static obs::Counter c = obs::registry().counter(
      "driver.units_failed_total", obs::Volatility::kStable,
      "units whose build/verify step failed");
  return c;
}

obs::Counter& warnings_total() {
  static obs::Counter c = obs::registry().counter(
      "driver.warnings_total", obs::Volatility::kStable,
      "static warnings after folding and suppression");
  return c;
}

obs::Counter& warnings_suppressed() {
  static obs::Counter c = obs::registry().counter(
      "driver.warnings_suppressed_total", obs::Volatility::kStable,
      "warnings removed by the suppression database");
  return c;
}

obs::Counter& dynamic_findings() {
  static obs::Counter c = obs::registry().counter(
      "driver.dynamic_findings_total", obs::Volatility::kStable,
      "rt.* findings from --dynamic runs");
  return c;
}

obs::Counter& functions_checked() {
  static obs::Counter c = obs::registry().counter(
      "driver.functions_checked_total", obs::Volatility::kStable,
      "functions checked, summed over units (Table 9 accounting)");
  return c;
}

obs::Counter& traces_checked() {
  static obs::Counter c = obs::registry().counter(
      "driver.traces_checked_total", obs::Volatility::kStable,
      "traces checked, summed over units (Table 9 accounting)");
  return c;
}

obs::Counter& validations_confirmed() {
  static obs::Counter c = obs::registry().counter(
      "crash.validations_confirmed_total", obs::Volatility::kStable,
      "static warnings confirmed by a crash-image witness");
  return c;
}

obs::Counter& validations_not_reproduced() {
  static obs::Counter c = obs::registry().counter(
      "crash.validations_not_reproduced_total", obs::Volatility::kStable,
      "executed warnings with no misbehaving reachable image");
  return c;
}

obs::Counter& validations_skipped() {
  static obs::Counter c = obs::registry().counter(
      "crash.validations_skipped_total", obs::Volatility::kStable,
      "warnings the enumeration could not judge");
  return c;
}

}  // namespace

const char* validation_name(Validation v) {
  switch (v) {
    case Validation::kConfirmed:
      return "confirmed";
    case Validation::kNotReproduced:
      return "not-reproduced";
    case Validation::kSkipped:
      return "skipped";
  }
  return "skipped";
}

namespace {

/// Recovery-oracle framework for a unit, inferred from the corpus naming
/// convention ("pmdk/btree_map" and so on). Unknown prefixes get no oracle:
/// images are still enumerated, recovery replay is skipped.
std::string framework_for_unit(const std::string& name) {
  const size_t slash = name.find('/');
  const std::string prefix = name.substr(0, slash);
  if (prefix == "pmdk") return "pmdk_mini";
  if (prefix == "pmfs") return "pmfs_mini";
  if (prefix == "mnemosyne") return "mnemosyne_mini";
  if (prefix == "nvmdirect") return "nvmdirect_mini";
  return "";
}

}  // namespace

AnalysisUnit make_source_unit(std::string name, std::string source,
                              std::optional<PersistencyModel> model) {
  AnalysisUnit u;
  u.name = std::move(name);
  u.build = [source = std::move(source), model] {
    BuiltUnit b;
    b.module = ir::parse_module(source);
    b.model = model;
    return b;
  };
  return u;
}

AnalysisUnit make_file_unit(std::string path,
                            std::optional<PersistencyModel> model) {
  AnalysisUnit u;
  u.name = path;
  u.build = [path = std::move(path), model] {
    std::ifstream f(path);
    if (!f) throw std::runtime_error("cannot open " + path);
    std::ostringstream buf;
    buf << f.rdbuf();
    BuiltUnit b;
    b.module = ir::parse_module(buf.str());
    b.model = model;
    return b;
  };
  return u;
}

// ===========================================================================
// Report rendering
// ===========================================================================

size_t Report::total_warnings() const {
  size_t n = 0;
  for (const UnitReport& u : units_) n += u.warning_count();
  return n;
}

bool Report::any_failed() const {
  for (const UnitReport& u : units_)
    if (u.failed) return true;
  return false;
}

void Report::print_text(std::ostream& os) const {
  for (const UnitReport& u : units_) os << u.text;
}

std::string Report::text() const {
  std::ostringstream os;
  print_text(os);
  return os.str();
}

void Report::print_json(std::ostream& os, bool include_timing) const {
  // v2 is backward-compatible with v1: it only adds the per-warning
  // "validation" field and the per-unit "crashsim" object, both present
  // only when the run enabled --crashsim.
  os << "{\n";
  os << "  \"schema\": \"deepmc-report-v2\",\n";
  os << "  \"total_warnings\": " << total_warnings() << ",\n";
  os << "  \"units\": [";
  for (size_t i = 0; i < units_.size(); ++i) {
    const UnitReport& u = units_[i];
    os << (i ? ",\n" : "\n");
    os << "    {\n";
    os << "      \"name\": " << json_quote(u.name) << ",\n";
    if (u.failed) {
      os << "      \"failed\": true,\n";
      os << "      \"error\": " << json_quote(u.error) << "\n";
      os << "    }";
      continue;
    }
    os << "      \"model\": " << json_quote(model_name(u.model)) << ",\n";
    os << "      \"failed\": false,\n";
    os << "      \"warning_count\": " << u.warning_count() << ",\n";
    os << "      \"suppressed\": " << u.suppressed << ",\n";
    os << "      \"warnings\": [";
    const auto& ws = u.result.warnings();
    for (size_t w = 0; w < ws.size(); ++w) {
      os << (w ? ",\n" : "\n");
      std::string wj = to_json(ws[w]);
      if (u.crashsim.ran && w < u.crashsim.validations.size()) {
        wj.pop_back();  // splice validation into the closing brace
        wj += ", \"validation\": ";
        wj += json_quote(validation_name(u.crashsim.validations[w]));
        wj += "}";
      }
      os << "        " << wj;
    }
    os << (ws.empty() ? "" : "\n      ") << "],\n";
    os << "      \"dynamic_warnings\": [";
    for (size_t d = 0; d < u.dynamic.size(); ++d) {
      const DynamicFinding& f = u.dynamic[d];
      os << (d ? ",\n" : "\n");
      os << "        {\"rule\": " << json_quote(f.rule)
         << ", \"file\": " << json_quote(f.loc.file)
         << ", \"line\": " << f.loc.line
         << ", \"message\": " << json_quote(f.message) << "}";
    }
    os << (u.dynamic.empty() ? "" : "\n      ") << "],\n";
    os << "      \"stats\": {";
    os << "\"trace_roots\": " << u.stats.trace_roots;
    os << ", \"functions_checked\": " << u.stats.functions_checked;
    os << ", \"traces_checked\": " << u.stats.traces_checked;
    os << ", \"dsa_nodes\": " << u.stats.dsa_nodes;
    os << ", \"persistent_dsa_nodes\": " << u.stats.persistent_dsa_nodes;
    if (include_timing)
      os << ", \"elapsed_ms\": "
         << strformat("%.3f", u.stats.elapsed_ms);
    os << "}";
    if (u.crashsim.ran) {
      const CrashSimSummary& cs = u.crashsim;
      os << ",\n      \"crashsim\": {\n";
      os << "        \"framework\": " << json_quote(cs.framework) << ",\n";
      os << "        \"confirmed\": " << cs.confirmed << ",\n";
      os << "        \"not_reproduced\": " << cs.not_reproduced << ",\n";
      os << "        \"skipped\": " << cs.skipped << ",\n";
      os << "        \"roots\": [";
      for (size_t r = 0; r < cs.roots.size(); ++r) {
        const CrashSimRootSummary& rs = cs.roots[r];
        os << (r ? ",\n" : "\n");
        os << "          {\"root\": " << json_quote(rs.root)
           << ", \"executed\": " << (rs.executed ? "true" : "false");
        if (!rs.executed) {
          os << ", \"error\": " << json_quote(rs.error) << "}";
          continue;
        }
        os << ", \"crash_points\": " << rs.crash_points
           << ", \"images\": " << rs.images
           << ", \"witnesses\": " << rs.witnesses
           << ", \"images_consistent\": " << rs.images_consistent
           << ", \"images_inconsistent\": " << rs.images_inconsistent
           << ", \"images_skipped\": " << rs.images_skipped
           << ", \"pruning_ratio\": " << strformat("%.4f", rs.pruning_ratio)
           << "}";
      }
      os << (cs.roots.empty() ? "" : "\n        ") << "]\n";
      os << "      }";
    }
    os << "\n";
    os << "    }";
  }
  os << (units_.empty() ? "" : "\n  ") << "]\n";
  os << "}\n";
}

std::string Report::json(bool include_timing) const {
  std::ostringstream os;
  print_json(os, include_timing);
  return os.str();
}

// ===========================================================================
// AnalysisDriver
// ===========================================================================

AnalysisDriver::AnalysisDriver(DriverOptions opts) : opts_(std::move(opts)) {}

UnitReport AnalysisDriver::analyze_unit(const AnalysisUnit& unit,
                                        support::ThreadPool& pool) const {
  UnitReport out;
  out.name = unit.name;
  obs::Span unit_span("unit.analyze", "driver",
                      obs::span_arg("unit", unit.name));
  units_total().inc();
  const auto t0 = std::chrono::steady_clock::now();
  try {
    BuiltUnit built = [&] {
      obs::Span build_span("unit.build", "driver",
                           obs::span_arg("unit", unit.name));
      return unit.build();
    }();
    ir::Module& module = *built.module;
    ir::verify_or_throw(module);
    out.model = built.model.value_or(opts_.model);

    std::ostringstream os;
    os << strformat("== %s (model: %s) ==\n", unit.name.c_str(),
                    model_name(out.model));

    StaticChecker checker(module, out.model, opts_.checker);
    checker.prepare();
    const std::vector<const ir::Function*> roots = checker.trace_roots();

    // Fan the per-root checks out; merging in root order keeps the result
    // identical to a serial StaticChecker::run().
    std::vector<std::future<CheckResult>> futs;
    futs.reserve(roots.size());
    for (const ir::Function* f : roots)
      futs.push_back(pool.submit([&checker, f] { return checker.check_root(*f); }));
    CheckResult result;
    for (auto& fut : futs) result.merge(pool.await(std::move(fut)));
    result.fold_empty_tx_shadows();
    result.sort();

    out.stats.trace_roots = roots.size();
    out.stats.functions_checked = result.functions_checked;
    out.stats.traces_checked = result.traces_checked;
    out.stats.dsa_nodes = checker.dsa().nodes().size();
    out.stats.persistent_dsa_nodes = checker.dsa().persistent_node_count();
    functions_checked().inc(result.functions_checked);
    traces_checked().inc(result.traces_checked);

    if (opts_.dump_dsg) {
      os << "-- persistent DSG --\n";
      analysis::print_dsg(checker.dsa(), os);
    }
    if (opts_.dump_traces) {
      // Reuses the checker's collector instead of rebuilding DSA + traces.
      const analysis::TraceCollector& collector = checker.trace_collector();
      os << "-- traces --\n";
      for (const auto& f : module.functions()) {
        if (f->is_declaration()) continue;
        auto traces = collector.collect(*f);
        size_t persist_events = 0;
        for (const auto& t : traces)
          persist_events += t.persistent_event_count();
        os << strformat("  @%s: %zu path(s), %zu persistent event(s)\n",
                        f->name().c_str(), traces.size(), persist_events);
      }
    }

    if (opts_.suppressions.size() > 0) {
      auto stats = opts_.suppressions.apply(result);
      out.suppressed = stats.suppressed;
      warnings_suppressed().inc(stats.suppressed);
      if (stats.suppressed)
        os << strformat("(%zu warning(s) suppressed by the database)\n",
                        stats.suppressed);
      for (size_t idx : stats.stale)
        os << strformat("note: stale suppression: %s\n",
                        opts_.suppressions.entries()[idx].str().c_str());
    }
    for (const Warning& w : result.warnings())
      os << (opts_.suggest ? warning_with_fix(w) : w.str()) << "\n";

    warnings_total().inc(result.count());

    if (opts_.crashsim) {
      obs::Span crashsim_span("unit.crashsim", "crash",
                              obs::span_arg("unit", unit.name));
      out.crashsim.ran = true;
      out.crashsim.framework = framework_for_unit(unit.name);

      // Zero-argument defined roots can be executed as-is; each gets its
      // own pool + recorder + enumeration, fanned across the worker pool
      // and merged in root order for deterministic output.
      std::vector<const ir::Function*> sim_roots;
      for (const ir::Function* f : roots)
        if (!f->is_declaration() && f->arg_count() == 0)
          sim_roots.push_back(f);

      crash::CrashSimOptions copts;
      copts.model = out.model;
      copts.framework = out.crashsim.framework;
      std::vector<std::future<crash::RootCrashSim>> cfuts;
      cfuts.reserve(sim_roots.size());
      for (const ir::Function* f : sim_roots)
        cfuts.push_back(pool.submit([&module, f, copts] {
          return crash::simulate_root(module, *f, copts);
        }));
      std::vector<crash::RootCrashSim> sims;
      sims.reserve(sim_roots.size());
      for (auto& fut : cfuts) sims.push_back(pool.await(std::move(fut)));

      os << "-- crash-state enumeration --\n";
      std::vector<std::string> executed_roots;
      std::set<SourceLoc> witness_locs;
      std::map<SourceLoc, std::string> witness_rule;  // first rule per loc
      for (const crash::RootCrashSim& sim : sims) {
        CrashSimRootSummary rs;
        rs.root = sim.root;
        rs.executed = sim.executed;
        rs.error = sim.error;
        rs.crash_points = sim.stats.crash_points;
        rs.images = sim.stats.images;
        rs.witnesses = sim.witnesses.size();
        rs.images_consistent = sim.images_consistent;
        rs.images_inconsistent = sim.images_inconsistent;
        rs.images_skipped = sim.images_skipped;
        rs.pruning_ratio = sim.stats.pruning_ratio();
        out.crashsim.roots.push_back(rs);
        if (!sim.executed) {
          os << strformat("  root @%s: not executed (%s)\n",
                          sim.root.c_str(), sim.error.c_str());
          continue;
        }
        executed_roots.push_back(sim.root);
        os << strformat(
            "  root @%s: %llu crash point(s), %llu image(s), %zu "
            "witness(es), pruning %.1f%%\n",
            sim.root.c_str(),
            static_cast<unsigned long long>(sim.stats.crash_points),
            static_cast<unsigned long long>(sim.stats.images),
            sim.witnesses.size(), 100.0 * rs.pruning_ratio);
        for (const crash::Witness& w : sim.witnesses) {
          for (const SourceLoc& loc : w.culprits) {
            witness_locs.insert(loc);
            witness_rule.emplace(loc, w.rule);
          }
        }
      }

      const std::set<std::string> executed =
          crash::call_closure(module, executed_roots);
      for (const Warning& w : result.warnings()) {
        Validation v;
        if (w.bug_class() == BugClass::kPerformance)
          v = Validation::kSkipped;  // perf findings have no crash image
        else if (!executed.count(w.function))
          v = Validation::kSkipped;  // never executed by any root
        else if (witness_locs.count(w.loc))
          v = Validation::kConfirmed;
        else
          v = Validation::kNotReproduced;
        out.crashsim.validations.push_back(v);
        switch (v) {
          case Validation::kConfirmed:
            ++out.crashsim.confirmed;
            os << strformat("  %s: validation confirmed [%s]\n",
                            w.loc.str().c_str(),
                            witness_rule.at(w.loc).c_str());
            break;
          case Validation::kNotReproduced:
            ++out.crashsim.not_reproduced;
            os << strformat("  %s: validation not-reproduced\n",
                            w.loc.str().c_str());
            break;
          case Validation::kSkipped:
            ++out.crashsim.skipped;
            os << strformat("  %s: validation skipped\n",
                            w.loc.str().c_str());
            break;
        }
      }
      os << strformat(
          "validation: %zu confirmed, %zu not-reproduced, %zu skipped\n",
          out.crashsim.confirmed, out.crashsim.not_reproduced,
          out.crashsim.skipped);
      validations_confirmed().inc(out.crashsim.confirmed);
      validations_not_reproduced().inc(out.crashsim.not_reproduced);
      validations_skipped().inc(out.crashsim.skipped);
    }

    if (opts_.dynamic_run && module.find_function("main")) {
      obs::Span dynamic_span("unit.dynamic", "runtime",
                             obs::span_arg("unit", unit.name));
      // Reuse the checker's DSA for instrumentation rather than running a
      // second, identical analysis over the module.
      interp::instrument_module(module, checker.dsa());
      pmem::PmPool pm(1 << 24, pmem::LatencyModel::zero());
      rt::RuntimeChecker rt(out.model);
      interp::Interpreter interp(module, pm, &rt);
      try {
        interp.run_main();
      } catch (const interp::InterpError& e) {
        os << strformat("dynamic run trapped: %s\n", e.what());
      }
      rt.publish_obs();
      for (const auto& r : rt.races())
        out.dynamic.push_back({"rt.strand-race", r.second_loc, r.str()});
      for (const auto& m : rt.epoch_mismatches())
        out.dynamic.push_back({"rt.epoch-mismatch", m.second_loc, m.str()});
      for (const auto& f : rt.redundant_flushes())
        out.dynamic.push_back({"rt.redundant-flush", f.loc, f.str()});
      for (const auto& b : rt.barrier_violations())
        out.dynamic.push_back({"rt.missing-barrier", b.loc, b.str()});
      for (const DynamicFinding& f : out.dynamic)
        os << strformat("%s: warning [%s] %s\n", f.loc.str().c_str(),
                        f.rule.c_str(), f.message.c_str());
      dynamic_findings().inc(out.dynamic.size());
    }

    if (opts_.dump_ir) {
      os << "-- IR --\n";
      ir::print_module(module, os);
    }
    out.result = std::move(result);
    os << strformat("%zu warning(s)\n\n", out.warning_count());
    out.text = os.str();
  } catch (const std::exception& e) {
    out.failed = true;
    out.error = e.what();
    units_failed().inc();
  }
  out.stats.elapsed_ms =
      std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() -
                                                t0)
          .count();
  return out;
}

Report AnalysisDriver::run(const std::vector<AnalysisUnit>& units) {
  obs::Span run_span(
      "driver.run", "driver",
      obs::span_arg_num("units", static_cast<double>(units.size())));
  const size_t jobs =
      opts_.jobs == 0 ? support::ThreadPool::default_concurrency() : opts_.jobs;
  // jobs == 1 means "serial in the calling thread": a zero-thread pool
  // executes every task inline, so serial runs carry no pool overhead.
  support::ThreadPool pool(jobs <= 1 ? 0 : jobs);

  std::vector<std::future<UnitReport>> futs;
  futs.reserve(units.size());
  for (const AnalysisUnit& unit : units)
    futs.push_back(
        pool.submit([this, &unit, &pool] { return analyze_unit(unit, pool); }));

  Report report;
  report.units_.reserve(units.size());
  // Collect in input order; workers may finish in any order.
  for (auto& fut : futs) report.units_.push_back(fut.get());
  return report;
}

}  // namespace deepmc::core
