#include "core/fixit.h"

namespace deepmc::core {

std::string suggest_fix(const Warning& w) {
  if (w.rule == "strict.unflushed-write" || w.rule == "epoch.unflushed-write") {
    if (w.model == PersistencyModel::kStrict)
      return "register the object with tx.add before modifying it (inside a "
             "transaction), or follow the store with pm.persist of the "
             "modified range";
    return "add pm.flush of the modified range before the epoch ends (the "
           "epoch's closing barrier will order it)";
  }
  if (w.rule == "strict.multiple-writes")
    return "give each persistent write its own flush + barrier (strict "
           "persistency orders persists individually); if batching is "
           "intended, switch the declared model to -epoch";
  if (w.rule == "strict.missing-barrier")
    return "insert pm.fence after the flush, before the next transaction "
           "begins or the function returns";
  if (w.rule == "epoch.missing-barrier")
    return "insert pm.fence at the end of the first epoch so the epochs are "
           "ordered";
  if (w.rule == "epoch.missing-barrier-nested")
    return "insert pm.fence before the inner transaction ends; inner "
           "transactions must persist before control returns to the outer "
           "one";
  if (w.rule == "model.semantic-mismatch")
    return "merge the consecutive transactions/epochs that update this "
           "object into one, so the object's updates become durable "
           "atomically";
  if (w.rule == "perf.flush-unmodified")
    return "flush only the modified fields (or drop the flush if nothing "
           "was written); flushing clean lines still pays a device round "
           "trip";
  if (w.rule == "perf.log-unmodified")
    return "remove the tx.add — the object is never modified in this "
           "transaction, so the snapshot and its commit-time flush are pure "
           "overhead";
  if (w.rule == "perf.redundant-flush")
    return "remove this flush: the range was already written back and has "
           "not been modified since";
  if (w.rule == "perf.persist-same-object")
    return "batch the object's updates and persist once at commit instead "
           "of after every update";
  if (w.rule == "perf.empty-durable-tx")
    return "move the persist inside the branch that performs the write, or "
           "drop the transaction when no update happens on this path";
  return "review the reported operation against the " +
         std::string(model_name(w.model)) + " persistency model";
}

std::string warning_with_fix(const Warning& w) {
  return w.str() + "\n    fix: " + suggest_fix(w);
}

}  // namespace deepmc::core
