// Parallel analysis orchestration: the one code path through which the
// CLI, tests and benches run DeepMC over a batch of inputs.
//
// The driver fans the batch out across a work-stealing thread pool
// (support/thread_pool.h) at two levels:
//
//   * across units — each corpus module / .mir file is parsed, verified
//     and checked as an independent task, and
//   * within a unit — once the module's DSA is built, every trace root is
//     checked as its own subtask (trace collection + rule scanning is the
//     hot loop of Table 9's compile-time overhead).
//
// Determinism: per-root results are merged in trace_roots() order and
// folded/sorted once (exactly what StaticChecker::run does serially), and
// each unit renders its entire report block into a private buffer; the
// buffers are emitted in input order. Output is therefore byte-identical
// for every --jobs value, which the golden and determinism tests assert.
//
// A unit that fails to build (unreadable file, parse or verify error)
// does not abort the batch: it is recorded as failed and the remaining
// units still run.
//
// Resilience (deepmc-report-v3): every stage is budgeted and cancellable
// (support/budget.h). When a unit exhausts a step budget the driver walks
// a degradation ladder — full bounds, tightened bounds, static-only —
// and classifies the unit ok/degraded/failed with a machine-readable
// reason; degradation is a pure function of the inputs (per-root budgets,
// no shared counters), so reports stay byte-identical at any --jobs. The
// wall-clock watchdog is the one exception: it only fires a CancelToken,
// and what it interrupts depends on the machine.
#pragma once

#include <chrono>
#include <functional>
#include <iosfwd>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "core/report.h"
#include "core/static_checker.h"
#include "core/suppressions.h"

namespace deepmc::support {
class ThreadPool;
class FaultScope;
}
namespace deepmc::ir {
class Module;
}

namespace deepmc::core {

enum class ReportFormat : uint8_t { kText, kJson };

/// What a unit's build step produced: the module plus an optional
/// persistency model override (corpus units force their framework's
/// model, exactly like the old CLI did). Expected input problems — an
/// unreadable file, a parse error — are returned structurally (`module`
/// null, `error`/`error_reason` set) instead of thrown, so a bad input
/// is per-unit data, not exception control flow through the driver.
struct BuiltUnit {
  std::unique_ptr<ir::Module> module;
  std::optional<PersistencyModel> model;
  std::string error;         ///< why the build produced no module
  std::string error_reason;  ///< machine-readable: "input-error", "parse-error"
};

/// One independent analysis input. `build` runs on a worker thread and
/// may throw; the exception text becomes the unit's error.
struct AnalysisUnit {
  std::string name;                        ///< shown in the report header
  std::function<BuiltUnit()> build;
};

/// Unit over in-memory MIR text (tests, benches).
AnalysisUnit make_source_unit(std::string name, std::string source,
                              std::optional<PersistencyModel> model = {});

/// Unit over a .mir file on disk; the read happens on the worker and an
/// unreadable file fails just that unit.
AnalysisUnit make_file_unit(std::string path,
                            std::optional<PersistencyModel> model = {});

/// Resilience budgets (0 = unlimited). Step budgets are deterministic:
/// each meter is private to one root / one unit-serial stage, so the trip
/// point is a pure function of the input. `wall_ms` is the watchdog and
/// inherently machine-dependent; it cancels cooperatively and degrades
/// the unit like a step budget, but identity across runs is not promised.
struct BudgetOptions {
  uint64_t trace_steps = 0;   ///< per trace root (collection walk steps)
  uint64_t dsa_steps = 0;     ///< per unit (DSA build, serial)
  uint64_t enum_images = 0;   ///< per crashsim root (materialised subsets)
  uint64_t interp_steps = 0;  ///< per executed root / dynamic run
  uint64_t wall_ms = 0;       ///< per unit attempt, wall clock

  [[nodiscard]] bool any() const {
    return trace_steps || dsa_steps || enum_images || interp_steps || wall_ms;
  }
};

struct DriverOptions {
  PersistencyModel model = PersistencyModel::kStrict;
  StaticChecker::Options checker;  ///< field sensitivity + trace bounds
  bool dynamic_run = false;        ///< execute @main under the runtime checker
  bool crashsim = false;           ///< crash-state enumeration + validation
  bool dump_ir = false;
  bool dump_dsg = false;
  bool dump_traces = false;
  bool suggest = false;            ///< append fix suggestions to warnings
  SuppressionDb suppressions;
  /// Analysis threads. 0 = hardware concurrency; 1 = serial in the calling
  /// thread (no pool threads at all).
  size_t jobs = 0;
  BudgetOptions budgets;
  /// false = fail fast: after the first failed unit (in input order), the
  /// remaining units are reported as not run instead of analyzed. true
  /// (default) keeps the long-standing keep-going behavior.
  bool keep_going = true;
  size_t max_subset_bits = 10;  ///< crashsim subset cap at the full rung

  // --- incremental serving hooks (src/serve/) ---
  /// Pre-computed raw per-root check results keyed by root function name.
  /// On the "full" ladder rung the driver merges a seeded result in root
  /// order instead of re-running check_root for that root; the caller is
  /// responsible for only seeding results that an identical configuration
  /// produced (the serve cache keys enforce this). Non-owning; must
  /// outlive the run. Tightened rungs ignore the seeds — they were
  /// computed at full bounds.
  const std::map<std::string, CheckResult>* seeded_roots = nullptr;
  /// Record every freshly computed per-root result in
  /// UnitReport::root_results so the caller can persist it.
  bool collect_root_results = false;
  /// Absolute wall-clock deadline covering the unit's *whole* degradation
  /// ladder (serve per-request deadlines). Unlike budgets.wall_ms — which
  /// restarts per attempt — every rung's token is armed against this same
  /// point, so a request finishes (ok, degraded, or failed with
  /// "budget-exhausted:wall-clock") within one deadline, never three.
  std::optional<std::chrono::steady_clock::time_point> deadline_at;
};

/// One rung of the degradation ladder: the bounds and stages a retry
/// uses. Exposed so tests can assert the ladder tightens monotonically.
struct LadderRung {
  std::string name;               ///< "full", "tightened", "static-only"
  analysis::TraceOptions trace;
  size_t max_subset_bits = 10;
  bool run_crashsim = false;
  bool run_dynamic = false;
  /// Final-rung behavior: a per-root trace-budget trip yields an empty
  /// result for that root (recorded in DegradedInfo) instead of failing
  /// the attempt — partial static warnings beat no report.
  bool tolerate_root_budget = false;
};

/// The ladder the driver walks for `opts`: rung 0 is the requested
/// configuration; later rungs tighten every bound monotonically and
/// finally drop crashsim/dynamic.
std::vector<LadderRung> degradation_ladder(const DriverOptions& opts);

/// A dynamic-checker finding, normalized for reporting ("rt.*" rules).
struct DynamicFinding {
  std::string rule;
  SourceLoc loc;
  std::string message;
};

/// End-to-end verdict for one static warning under crash-state enumeration
/// (--crashsim): `confirmed` means at least one enumerated crash image
/// witnesses the warned-about inconsistency; `not-reproduced` means the
/// warned line executed but no reachable image misbehaved; `skipped` means
/// the enumeration could not judge it (performance-class warning, or the
/// code never executed under any simulated root).
enum class Validation : uint8_t { kConfirmed, kNotReproduced, kSkipped };

const char* validation_name(Validation v);

/// Per-root crash-simulation counters (deterministic; no wall clock).
struct CrashSimRootSummary {
  std::string root;
  bool executed = false;
  std::string error;           ///< interpreter failure, when !executed
  uint64_t crash_points = 0;
  uint64_t images = 0;         ///< distinct reachable crash images
  uint64_t witnesses = 0;      ///< trace-oracle violation witnesses
  uint64_t images_consistent = 0;
  uint64_t images_inconsistent = 0;
  uint64_t images_skipped = 0;  ///< no recovery oracle for this unit
  double pruning_ratio = 0;     ///< share of the subset space never built
};

/// Per-unit crash-simulation results: root summaries plus one Validation
/// per static warning (parallel to UnitReport::result.warnings()).
struct CrashSimSummary {
  bool ran = false;
  std::string framework;  ///< recovery oracle used ("" = enumeration only)
  std::vector<CrashSimRootSummary> roots;
  std::vector<Validation> validations;
  size_t confirmed = 0;
  size_t not_reproduced = 0;
  size_t skipped = 0;
};

/// Per-unit observability counters carried into the JSON report.
struct UnitStats {
  size_t trace_roots = 0;
  size_t functions_checked = 0;
  size_t traces_checked = 0;
  size_t dsa_nodes = 0;
  size_t persistent_dsa_nodes = 0;
  double elapsed_ms = 0;  ///< wall clock for this unit (nondeterministic)
};

/// Unit classification under the resilience layer. kOk: analyzed at the
/// requested bounds. kDegraded: a budget tripped and a tightened rung
/// produced (possibly partial) results. kFailed: no analysis result.
enum class UnitStatus : uint8_t { kOk, kDegraded, kFailed };

const char* unit_status_name(UnitStatus s);

/// Why and how a unit was degraded (UnitStatus::kDegraded only).
struct DegradedInfo {
  std::string rung;    ///< ladder rung that produced the result
  std::string reason;  ///< machine-readable, e.g. "budget-exhausted:trace.steps"
  std::vector<std::string> skipped_stages;          ///< "crashsim", "dynamic"
  std::vector<std::string> roots_budget_exhausted;  ///< roots with no results
};

struct UnitReport {
  std::string name;
  PersistencyModel model = PersistencyModel::kStrict;
  CheckResult result;                   ///< static warnings (post-suppression)
  std::vector<DynamicFinding> dynamic;  ///< runtime findings (--dynamic)
  CrashSimSummary crashsim;             ///< filled only under --crashsim
  size_t suppressed = 0;
  std::string text;  ///< fully rendered text block for this unit
  UnitStats stats;
  UnitStatus status = UnitStatus::kOk;
  DegradedInfo degraded;   ///< meaningful when status == kDegraded
  bool failed = false;     ///< kept in sync with status (v2 compatibility)
  std::string error;       ///< build/verify failure message
  std::string fail_reason; ///< machine-readable, e.g. "input-error",
                           ///< "parse-error", "fault-injected:<point>"
  /// Raw (unfolded, unsorted) per-root results computed by this run, in
  /// trace_roots() order; roots satisfied from DriverOptions::seeded_roots
  /// do not appear. Filled only under collect_root_results and never
  /// rendered into the report itself.
  std::vector<std::pair<std::string, CheckResult>> root_results;

  [[nodiscard]] size_t warning_count() const {
    return result.count() + dynamic.size();
  }
};

/// The merged, deterministically ordered result of a driver run. Units
/// appear in input order regardless of completion order.
class Report {
 public:
  [[nodiscard]] const std::vector<UnitReport>& units() const {
    return units_;
  }
  [[nodiscard]] size_t total_warnings() const;
  [[nodiscard]] bool any_failed() const;
  [[nodiscard]] bool any_degraded() const;

  /// Concatenated unit text blocks — byte-identical to what a serial
  /// deepmc run prints. Failed units contribute nothing here (their error
  /// goes to stderr in the CLI).
  void print_text(std::ostream& os) const;
  [[nodiscard]] std::string text() const;

  /// Machine-readable report ("deepmc-report-v3"). `include_timing`
  /// controls the per-unit elapsed_ms field, the only nondeterministic
  /// value in the schema; tests switch it off to compare runs bytewise.
  void print_json(std::ostream& os, bool include_timing = true) const;
  [[nodiscard]] std::string json(bool include_timing = true) const;

  /// Assemble a report from pre-built unit blocks. The serve cache uses
  /// this to render a cached unit through the exact same print paths a
  /// fresh run takes, which is what keeps cached responses byte-identical.
  static Report from_units(std::vector<UnitReport> units);

 private:
  friend class AnalysisDriver;
  std::vector<UnitReport> units_;
};

class AnalysisDriver {
 public:
  explicit AnalysisDriver(DriverOptions opts = {});

  /// Analyze every unit (in parallel per DriverOptions::jobs) and return
  /// the merged report.
  Report run(const std::vector<AnalysisUnit>& units);

  /// Same, over an externally owned pool — the serve daemon keeps one
  /// warm across requests instead of rebuilding workers per request.
  /// DriverOptions::jobs is ignored on this path; the pool decides.
  Report run(const std::vector<AnalysisUnit>& units,
             support::ThreadPool& pool);

  [[nodiscard]] const DriverOptions& options() const { return opts_; }

 private:
  UnitReport analyze_unit(const AnalysisUnit& unit,
                          support::ThreadPool& pool) const;
  /// One ladder-rung attempt. Fills `out` on success; throws the
  /// classified resilience signal (BudgetExceeded, FaultInjected,
  /// CancelledError) or the build/verify error otherwise.
  void run_attempt(const AnalysisUnit& unit, support::ThreadPool& pool,
                   const LadderRung& rung, support::FaultScope& faults,
                   const support::CancelToken& cancel, UnitReport& out,
                   std::vector<std::string>* roots_exhausted) const;

  DriverOptions opts_;
};

}  // namespace deepmc::core
