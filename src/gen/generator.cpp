#include "gen/generator.h"

#include <algorithm>
#include <cassert>
#include <cctype>

#include "ir/builder.h"
#include "ir/printer.h"
#include "ir/verifier.h"
#include "support/rng.h"
#include "support/str.h"

namespace deepmc::gen {

using corpus::Framework;
using core::PersistencyModel;
using ir::BasicBlock;
using ir::IRBuilder;
using ir::RegionKind;
using ir::StructType;
using ir::Value;

namespace {

/// Clean scenario shapes. Each is self-contained: it allocates its own
/// objects and leaves no pending persistence state (unfenced flushes,
/// open regions, unchecked writes) behind.
enum class Scenario : uint8_t {
  kTxUpdate,         // tx.begin; tx.add; stores; tx.end        (pmdk)
  kPersistUpdate,    // store; pm.persist                       (nvmdirect)
  kFlushFenceUpdate, // store; pm.flush; pm.fence
  kEpochUpdate,      // epoch.begin; store; flush; fence; epoch.end
  kEpochFenceAfter,  // epoch.begin; store; flush; epoch.end; fence
  kStrandUpdate,     // strand.begin; store; flush; strand.end; fence
  kNestedRegion,     // nested tx (logged) / nested epoch (fenced)
  kVolatileNoise,    // alloca traffic, no persistence
  kBranchUpdate,     // diamond: both arms store+persist the same field
  kBulkInit,         // memset + whole-object persist
  kExtCall,          // call into a declared external helper
};

const std::vector<Scenario>& scenarios_for(Framework f) {
  // Weighted by repetition: the framework's signature idiom dominates.
  static const std::vector<Scenario> pmdk = {
      Scenario::kTxUpdate,     Scenario::kTxUpdate,
      Scenario::kPersistUpdate, Scenario::kFlushFenceUpdate,
      Scenario::kNestedRegion, Scenario::kBranchUpdate,
      Scenario::kBulkInit,     Scenario::kVolatileNoise,
      Scenario::kExtCall};
  static const std::vector<Scenario> nvmdirect = {
      Scenario::kPersistUpdate, Scenario::kPersistUpdate,
      Scenario::kFlushFenceUpdate, Scenario::kTxUpdate,
      Scenario::kStrandUpdate, Scenario::kBranchUpdate,
      Scenario::kBulkInit,     Scenario::kVolatileNoise,
      Scenario::kExtCall};
  static const std::vector<Scenario> mnemosyne = {
      Scenario::kEpochUpdate,  Scenario::kEpochUpdate,
      Scenario::kEpochFenceAfter, Scenario::kFlushFenceUpdate,
      Scenario::kStrandUpdate, Scenario::kBranchUpdate,
      Scenario::kVolatileNoise, Scenario::kBulkInit,
      Scenario::kExtCall};
  static const std::vector<Scenario> pmfs = {
      Scenario::kEpochUpdate,  Scenario::kEpochFenceAfter,
      Scenario::kNestedRegion, Scenario::kBulkInit,
      Scenario::kFlushFenceUpdate, Scenario::kVolatileNoise,
      Scenario::kExtCall};
  switch (f) {
    case Framework::kPmdk: return pmdk;
    case Framework::kNvmDirect: return nvmdirect;
    case Framework::kMnemosyne: return mnemosyne;
    case Framework::kPmfs: return pmfs;
  }
  return pmdk;
}

class ProgramGenerator {
 public:
  explicit ProgramGenerator(const GenOptions& opts)
      : opts_(opts),
        // Mix the seed so seed 0 does not degenerate into splitmix's
        // first fixed-point neighbourhood.
        rng_(opts.seed * 0x9e3779b97f4a7c15ull + 0xdeadbeefcafef00dull) {}

  GeneratedProgram run() {
    GeneratedProgram out;
    out.seed = opts_.seed;
    out.name = strformat("gen/s%llu",
                                  static_cast<unsigned long long>(opts_.seed));
    out.framework = opts_.framework
                        ? *opts_.framework
                        : static_cast<Framework>(rng_.below(4));
    out.model = corpus::framework_model(out.framework);
    model_ = out.model;
    framework_ = out.framework;
    out.clean = opts_.force_clean || rng_.chance(opts_.clean_probability);

    file_ = strformat("gen_%05llu.c",
                               static_cast<unsigned long long>(opts_.seed));
    out.module = std::make_unique<ir::Module>(out.name);
    mod_ = out.module.get();
    builder_ = std::make_unique<IRBuilder>(*mod_);

    make_structs();
    plan_and_emit(out.clean);

    ir::verify_or_throw(*mod_);
    out.text = ir::to_string(*mod_);

    out.manifest.program = out.name;
    out.manifest.seed = opts_.seed;
    out.manifest.framework = corpus::framework_name(out.framework);
    out.manifest.model = core::model_name(out.model);
    out.manifest.clean = out.clean;
    out.manifest.source_file = file_;
    out.manifest.line_count = line_;
    out.manifest.bugs = std::move(bugs_);
    return out;
  }

 private:
  IRBuilder& b() { return *builder_; }

  /// Advance the synthetic source position and stamp it on the next
  /// emitted instruction. Every instruction gets its own line, so planted
  /// warning sites never collide under the checker's (rule, file, line)
  /// dedup.
  uint32_t stamp() {
    ++line_;
    b().set_loc(file_, line_);
    return line_;
  }

  void make_structs() {
    const size_t n = 1 + rng_.below(2);
    for (size_t i = 0; i < n; ++i) {
      const size_t int_fields = 2 + rng_.below(3);
      std::vector<const ir::Type*> fields;
      for (size_t f = 0; f < int_fields; ++f)
        fields.push_back(mod_->types().i64());
      if (rng_.chance(0.25))
        fields.push_back(mod_->types().array_of(mod_->types().i64(), 4));
      structs_.push_back(mod_->types().create_struct(
          strformat("gen_rec%zu", i), std::move(fields)));
      int_field_count_.push_back(int_fields);
    }
  }

  const StructType* pick_struct(size_t* int_fields) {
    const size_t i = rng_.below(structs_.size());
    *int_fields = int_field_count_[i];
    return structs_[i];
  }

  std::string vname(const char* base) {
    return strformat("s%zu_%s%zu", slot_, base, vcount_++);
  }

  Value* fresh_object(const StructType** st_out, size_t* int_fields) {
    const StructType* st = pick_struct(int_fields);
    if (st_out) *st_out = st;
    stamp();
    return b().pm_alloc(st, vname("o"));
  }

  Value* field_ptr(Value* obj, size_t index) {
    stamp();
    return b().gep(obj, static_cast<int64_t>(index), vname("f"));
  }

  void store_const(Value* ptr) {
    stamp();
    b().store(static_cast<int64_t>(1 + rng_.below(97)), ptr);
  }

  // --- clean scenarios ------------------------------------------------------

  void emit_tx_update() {
    size_t nf = 0;
    const StructType* st = nullptr;
    Value* o = fresh_object(&st, &nf);
    stamp();
    b().tx_begin(RegionKind::kTx);
    stamp();
    b().tx_add(o);
    const size_t writes = 1 + rng_.below(std::min<size_t>(3, nf));
    for (size_t i = 0; i < writes; ++i) store_const(field_ptr(o, i));
    stamp();
    b().tx_end(RegionKind::kTx);
  }

  void emit_persist_update() {
    size_t nf = 0;
    Value* o = fresh_object(nullptr, &nf);
    Value* f = field_ptr(o, rng_.below(nf));
    store_const(f);
    stamp();
    b().persist(f);
  }

  void emit_flush_fence_update() {
    size_t nf = 0;
    Value* o = fresh_object(nullptr, &nf);
    Value* f = field_ptr(o, rng_.below(nf));
    store_const(f);
    stamp();
    b().flush(f);
    stamp();
    b().fence();
  }

  void emit_epoch_update(bool fence_inside) {
    size_t nf = 0;
    Value* o = fresh_object(nullptr, &nf);
    stamp();
    b().epoch_begin();
    Value* f = field_ptr(o, rng_.below(nf));
    store_const(f);
    stamp();
    b().flush(f);
    if (fence_inside) {
      stamp();
      b().fence();
      stamp();
      b().epoch_end();
    } else {
      stamp();
      b().epoch_end();
      stamp();
      b().fence();
    }
  }

  void emit_strand_update() {
    size_t nf = 0;
    Value* o = fresh_object(nullptr, &nf);
    stamp();
    b().strand_begin();
    Value* f = field_ptr(o, rng_.below(nf));
    store_const(f);
    stamp();
    b().flush(f);
    stamp();
    b().strand_end();
    stamp();
    b().fence();
  }

  void emit_nested_region() {
    size_t nf1 = 0, nf2 = 0;
    Value* outer = fresh_object(nullptr, &nf1);
    Value* inner = fresh_object(nullptr, &nf2);
    if (model_ == PersistencyModel::kStrict) {
      // PMDK-style nested durable transactions with undo logging.
      stamp();
      b().tx_begin(RegionKind::kTx);
      stamp();
      b().tx_add(outer);
      store_const(field_ptr(outer, 0));
      stamp();
      b().tx_begin(RegionKind::kTx);
      stamp();
      b().tx_add(inner);
      store_const(field_ptr(inner, 0));
      stamp();
      b().tx_end(RegionKind::kTx);
      stamp();
      b().tx_end(RegionKind::kTx);
    } else {
      // PMFS-style nested epochs: the inner epoch persists (flush+fence)
      // before returning to the outer one.
      stamp();
      b().epoch_begin();
      Value* fo = field_ptr(outer, 0);
      store_const(fo);
      stamp();
      b().flush(fo);
      stamp();
      b().epoch_begin();
      Value* fi = field_ptr(inner, 0);
      store_const(fi);
      stamp();
      b().flush(fi);
      stamp();
      b().fence();
      stamp();
      b().epoch_end();
      stamp();
      b().epoch_end();
    }
  }

  void emit_volatile_noise() {
    stamp();
    Value* a = b().alloca_(mod_->types().i64(), vname("a"));
    stamp();
    b().store(static_cast<int64_t>(rng_.below(100)), a);
    stamp();
    Value* v = b().load(a, vname("v"));
    stamp();
    Value* w = b().binop(ir::BinOpKind::kAdd, v,
                         b().const_int(static_cast<int64_t>(1 + rng_.below(9))),
                         vname("w"));
    stamp();
    b().store(w, a);
  }

  void emit_branch_update() {
    size_t nf = 0;
    Value* o = fresh_object(nullptr, &nf);
    Value* f = field_ptr(o, rng_.below(nf));
    stamp();
    Value* c = b().alloca_(mod_->types().i64(), vname("c"));
    const int64_t k = static_cast<int64_t>(rng_.below(2));
    stamp();
    b().store(k, c);
    stamp();
    Value* v = b().load(c, vname("v"));
    stamp();
    Value* cond =
        b().binop(ir::BinOpKind::kEq, v, b().const_int(0), vname("cond"));
    BasicBlock* then_bb =
        b().create_block(strformat("s%zu_then", slot_));
    BasicBlock* else_bb =
        b().create_block(strformat("s%zu_else", slot_));
    BasicBlock* join_bb =
        b().create_block(strformat("s%zu_join", slot_));
    stamp();
    b().cond_br(cond, then_bb, else_bb);
    b().set_insert_point(then_bb);
    store_const(f);
    stamp();
    b().persist(f);
    stamp();
    b().br(join_bb);
    b().set_insert_point(else_bb);
    store_const(f);
    stamp();
    b().persist(f);
    stamp();
    b().br(join_bb);
    b().set_insert_point(join_bb);
  }

  void emit_bulk_init() {
    size_t nf = 0;
    const StructType* st = nullptr;
    Value* o = fresh_object(&st, &nf);
    stamp();
    b().memset_(o, b().const_int(0),
                b().const_int(static_cast<int64_t>(st->size())));
    stamp();
    b().persist(o, st->size());
  }

  void emit_ext_call() {
    if (!ext_) ext_ = mod_->create_function("gen_ext", mod_->types().void_type(), {});
    stamp();
    b().call(ext_, {});
  }

  void emit_clean(Scenario s) {
    switch (s) {
      case Scenario::kTxUpdate: emit_tx_update(); break;
      case Scenario::kPersistUpdate: emit_persist_update(); break;
      case Scenario::kFlushFenceUpdate: emit_flush_fence_update(); break;
      case Scenario::kEpochUpdate: emit_epoch_update(true); break;
      case Scenario::kEpochFenceAfter: emit_epoch_update(false); break;
      case Scenario::kStrandUpdate: emit_strand_update(); break;
      case Scenario::kNestedRegion: emit_nested_region(); break;
      case Scenario::kVolatileNoise: emit_volatile_noise(); break;
      case Scenario::kBranchUpdate: emit_branch_update(); break;
      case Scenario::kBulkInit: emit_bulk_init(); break;
      case Scenario::kExtCall: emit_ext_call(); break;
    }
  }

  // --- bug scenarios --------------------------------------------------------
  //
  // Each records exactly one manifest entry whose (file, line) is the site
  // the checker reports. Shapes mirror src/core/static_checker.cpp's rule
  // semantics; docs/CORPUS.md documents them next to the rule inventory.

  void plant(BugKind kind, uint32_t line) {
    PlantedBug bug;
    bug.kind = kind;
    bug.rule = bug_kind_rule(kind, model_);
    bug.file = file_;
    bug.line = line;
    bug.function = func_name_;
    bugs_.push_back(std::move(bug));
  }

  /// Store never flushed; the trailing barrier reports it.
  void emit_bug_missing_flush() {
    size_t nf = 0;
    Value* o = fresh_object(nullptr, &nf);
    Value* f = field_ptr(o, rng_.below(nf));
    stamp();
    plant(BugKind::kMissingFlush, line_);
    b().store(static_cast<int64_t>(1 + rng_.below(97)), f);
    stamp();
    b().fence();
  }

  /// Flushed store with no barrier before the trace ends. Only valid as a
  /// function's final block: a later fence would retroactively order it.
  void emit_bug_missing_fence() {
    size_t nf = 0;
    Value* o = fresh_object(nullptr, &nf);
    Value* f = field_ptr(o, rng_.below(nf));
    stamp();
    plant(BugKind::kMissingFence, line_);
    b().store(static_cast<int64_t>(1 + rng_.below(97)), f);
    stamp();
    b().flush(f);
  }

  /// The second store is "moved" after the flush: the flushed line no
  /// longer holds the newest value when the barrier hits.
  void emit_bug_misordered_store() {
    size_t nf = 0;
    Value* o = fresh_object(nullptr, &nf);
    Value* f = field_ptr(o, rng_.below(nf));
    store_const(f);
    stamp();
    b().flush(f);
    stamp();
    plant(BugKind::kMisorderedStore, line_);
    b().store(static_cast<int64_t>(1 + rng_.below(97)), f);
    stamp();
    b().fence();
  }

  /// Duplicate write-back of an unmodified range.
  void emit_bug_redundant_flush() {
    size_t nf = 0;
    Value* o = fresh_object(nullptr, &nf);
    Value* f = field_ptr(o, rng_.below(nf));
    store_const(f);
    stamp();
    b().flush(f);
    stamp();
    plant(BugKind::kRedundantFlush, line_);
    b().flush(f);
    stamp();
    b().fence();
  }

  /// Several flushed writes made durable by one barrier (the "oversized
  /// epoch": updates that should persist one at a time are batched).
  void emit_bug_oversized_epoch() {
    size_t nf = 0;
    Value* o = fresh_object(nullptr, &nf);
    const size_t writes = std::max<size_t>(2, std::min<size_t>(nf, 2 + rng_.below(2)));
    for (size_t i = 0; i < writes; ++i) {
      Value* f = field_ptr(o, i);
      store_const(f);
      stamp();
      b().flush(f);
    }
    stamp();
    plant(BugKind::kOversizedEpoch, line_);
    b().fence();
  }

  /// The region commits while one of its writes is neither undo-logged
  /// nor flushed.
  void emit_bug_unflushed_commit() {
    size_t nf1 = 0, nf2 = 0;
    Value* logged = fresh_object(nullptr, &nf1);
    Value* stray = fresh_object(nullptr, &nf2);
    const RegionKind kind = model_ == PersistencyModel::kStrict
                                ? RegionKind::kTx
                                : RegionKind::kEpoch;
    stamp();
    b().tx_begin(kind);
    stamp();
    b().tx_add(logged);
    store_const(field_ptr(logged, 0));
    Value* f2 = field_ptr(stray, rng_.below(nf2));
    stamp();
    plant(BugKind::kUnflushedCommit, line_);
    b().store(static_cast<int64_t>(1 + rng_.below(97)), f2);
    stamp();
    b().tx_end(kind);
  }

  void emit_bug(BugKind kind) {
    switch (kind) {
      case BugKind::kMissingFlush: emit_bug_missing_flush(); break;
      case BugKind::kMissingFence: emit_bug_missing_fence(); break;
      case BugKind::kMisorderedStore: emit_bug_misordered_store(); break;
      case BugKind::kRedundantFlush: emit_bug_redundant_flush(); break;
      case BugKind::kOversizedEpoch: emit_bug_oversized_epoch(); break;
      case BugKind::kUnflushedCommit: emit_bug_unflushed_commit(); break;
    }
  }

  // --- program layout -------------------------------------------------------

  void plan_and_emit(bool clean) {
    const size_t nfuncs = 1 + rng_.below(std::max<size_t>(1, opts_.max_functions));
    std::vector<size_t> nblocks(nfuncs);
    size_t total = 0;
    for (size_t i = 0; i < nfuncs; ++i) {
      nblocks[i] =
          1 + rng_.below(std::max<size_t>(1, opts_.max_blocks_per_function));
      total += nblocks[i];
    }

    std::vector<bool> is_bug_slot(total, false);
    if (!clean) {
      size_t nbugs = std::min<size_t>(
          1 + rng_.below(std::max<size_t>(1, opts_.max_bugs)), total);
      std::vector<size_t> order(total);
      for (size_t i = 0; i < total; ++i) order[i] = i;
      for (size_t i = total - 1; i > 0; --i)
        std::swap(order[i], order[rng_.below(i + 1)]);
      for (size_t i = 0; i < nbugs; ++i) is_bug_slot[order[i]] = true;
    }

    const std::vector<Scenario>& menu = scenarios_for(framework_);
    size_t global = 0;
    for (size_t fi = 0; fi < nfuncs; ++fi) {
      func_name_ = strformat("gen_f%zu", fi);
      b().begin_function(func_name_, mod_->types().void_type(), {});
      for (size_t bi = 0; bi < nblocks[fi]; ++bi, ++global) {
        slot_ = global;
        if (is_bug_slot[global]) {
          BugKind kind = static_cast<BugKind>(rng_.below(kBugKindCount));
          const bool last_block = bi + 1 == nblocks[fi];
          if (kind == BugKind::kMissingFence && !last_block) {
            // Trace-end dependent shape in a non-final block: fall back to
            // a position-independent kind (the draw stays deterministic).
            static constexpr BugKind fallback[5] = {
                BugKind::kMissingFlush, BugKind::kMisorderedStore,
                BugKind::kRedundantFlush, BugKind::kOversizedEpoch,
                BugKind::kUnflushedCommit};
            kind = fallback[rng_.below(5)];
          }
          emit_bug(kind);
        } else {
          emit_clean(menu[rng_.below(menu.size())]);
        }
      }
      stamp();
      b().ret();
    }
  }

  GenOptions opts_;
  Rng rng_;
  ir::Module* mod_ = nullptr;
  std::unique_ptr<IRBuilder> builder_;
  ir::Function* ext_ = nullptr;
  Framework framework_ = Framework::kPmdk;
  PersistencyModel model_ = PersistencyModel::kStrict;
  std::string file_;
  std::string func_name_;
  uint32_t line_ = 0;
  size_t slot_ = 0;
  size_t vcount_ = 0;
  std::vector<const StructType*> structs_;
  std::vector<size_t> int_field_count_;
  std::vector<PlantedBug> bugs_;
};

}  // namespace

GeneratedProgram generate_program(const GenOptions& opts) {
  return ProgramGenerator(opts).run();
}

std::string touch_function(const std::string& text, uint64_t salt) {
  // Line-level view of the printed module: a function body spans a line
  // starting "define " through the next "}" at column 0. Editable sites
  // are "store i64 <constant>, ..." lines — bumping the constant changes
  // the function's content hash without disturbing control flow, locs,
  // or the planted-bug manifest's warning sites.
  std::vector<std::string> lines;
  size_t start = 0;
  while (start <= text.size()) {
    const size_t nl = text.find('\n', start);
    if (nl == std::string::npos) {
      if (start < text.size()) lines.push_back(text.substr(start));
      break;
    }
    lines.push_back(text.substr(start, nl - start));
    start = nl + 1;
  }

  // Editable store-line indices, grouped by owning function.
  std::vector<std::vector<size_t>> functions;
  bool in_function = false;
  for (size_t i = 0; i < lines.size(); ++i) {
    const std::string& line = lines[i];
    if (line.rfind("define ", 0) == 0) {
      in_function = true;
      functions.emplace_back();
      continue;
    }
    if (line == "}") {
      in_function = false;
      if (!functions.empty() && functions.back().empty()) functions.pop_back();
      continue;
    }
    if (!in_function || functions.empty()) continue;
    size_t p = line.find_first_not_of(" \t");
    if (p == std::string::npos) continue;
    if (line.compare(p, 10, "store i64 ") != 0) continue;
    const size_t digits = p + 10;
    size_t end = digits;
    while (end < line.size() && std::isdigit(static_cast<unsigned char>(line[end])))
      ++end;
    if (end == digits || end >= line.size() || line[end] != ',') continue;
    functions.back().push_back(i);
  }
  if (functions.empty()) return text;

  const std::vector<size_t>& sites = functions[salt % functions.size()];
  std::string& line = lines[sites[(salt / functions.size()) % sites.size()]];
  const size_t p = line.find("store i64 ") + 10;
  size_t end = p;
  while (end < line.size() && std::isdigit(static_cast<unsigned char>(line[end])))
    ++end;
  const long long value = std::stoll(line.substr(p, end - p));
  // Stay a small positive constant so the line shape (and any overflow
  // behavior) never changes, whatever the starting value.
  const long long bumped = value >= 97 ? 1 : value + 1;
  line.replace(p, end - p, std::to_string(bumped));

  std::string out;
  out.reserve(text.size() + 8);
  for (const std::string& l : lines) {
    out += l;
    out += '\n';
  }
  // Preserve the original trailing-newline-lessness, if any.
  if (!text.empty() && text.back() != '\n') out.pop_back();
  return out;
}

std::string mutate_text(const std::string& text, uint64_t seed,
                        size_t tokens) {
  struct Token {
    size_t start;
    size_t len;
  };
  std::vector<Token> toks;
  size_t i = 0;
  while (i < text.size()) {
    while (i < text.size() &&
           std::isspace(static_cast<unsigned char>(text[i])))
      ++i;
    const size_t start = i;
    while (i < text.size() &&
           !std::isspace(static_cast<unsigned char>(text[i])))
      ++i;
    if (i > start) toks.push_back({start, i - start});
  }
  if (toks.empty() || tokens == 0) return text;

  Rng rng(seed * 0x9e3779b97f4a7c15ull + 0x5ca1ab1e0ddba11ull);
  // Pick distinct token indices, then corrupt from the back so earlier
  // offsets stay valid.
  std::vector<std::pair<size_t, uint64_t>> picks;  // token idx, strategy
  std::vector<bool> used(toks.size(), false);
  for (size_t t = 0; t < tokens && t < toks.size(); ++t) {
    size_t idx = rng.below(toks.size());
    for (size_t probe = 0; used[idx] && probe < toks.size(); ++probe)
      idx = (idx + 1) % toks.size();
    if (used[idx]) break;
    used[idx] = true;
    picks.emplace_back(idx, rng.next());
  }
  std::sort(picks.begin(), picks.end(),
            [](const auto& a, const auto& b) { return a.first > b.first; });

  std::string out = text;
  for (const auto& [idx, strategy_bits] : picks) {
    const Token& tok = toks[idx];
    const std::string word = out.substr(tok.start, tok.len);
    std::string repl;
    switch (strategy_bits % 6) {
      case 0: repl = ""; break;                       // delete
      case 1: repl = "@@@@"; break;                   // garbage
      case 2: repl = word + " " + word; break;        // duplicate
      case 3: repl = word.substr(0, tok.len / 2); break;  // truncate
      case 4: repl = "99999999999999999999999999"; break;  // overflow int
      case 5: repl = "\"" + word; break;              // unterminated string
    }
    out.replace(tok.start, tok.len, repl);
  }
  return out;
}

}  // namespace deepmc::gen
