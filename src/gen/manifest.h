// Planted-bug manifests (deepmc-manifest-v1).
//
// Every generated program (src/gen/generator.h) carries a machine-readable
// manifest of the violations the generator planted: one entry per bug with
// the kind of corruption, the static rule id the checker is expected to
// fire, and the exact source location the warning must cite. The corpus
// harness (src/tools/deepmc-corpus.cpp, scripts/run_corpus.sh) scores
// checker reports against these manifests to measure precision/recall at
// corpus scale — the same (file, line) keying the hand-written registry
// (src/corpus/registry.h) uses for the paper's Tables 3 and 8.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "core/model.h"

namespace deepmc::gen {

/// The corruption kinds the generator can plant. Each maps to a concrete
/// MIR shape with a known warning site (docs/CORPUS.md has the shapes).
enum class BugKind : uint8_t {
  kMissingFlush,     ///< persistent store never flushed before its barrier
  kMissingFence,     ///< flushed store with no persist barrier before end
  kMisorderedStore,  ///< store moved after its flush (stale line persists)
  kRedundantFlush,   ///< duplicate flush of an unmodified range
  kOversizedEpoch,   ///< several writes made durable by a single barrier
  kUnflushedCommit,  ///< region commits with an unlogged, unflushed write
};

inline constexpr size_t kBugKindCount = 6;

const char* bug_kind_name(BugKind k);
std::optional<BugKind> parse_bug_kind(std::string_view name);

/// The static rule id the checker reports for `kind` under `model`
/// (src/core/static_checker.h's rule inventory).
const char* bug_kind_rule(BugKind kind, core::PersistencyModel model);

/// One planted violation: where it is and what the checker must say.
struct PlantedBug {
  BugKind kind = BugKind::kMissingFlush;
  std::string rule;      ///< expected rule id, e.g. "strict.unflushed-write"
  std::string file;      ///< synthetic source file, e.g. "gen_0042.c"
  uint32_t line = 0;     ///< line the warning must cite
  std::string function;  ///< function carrying the bug

  [[nodiscard]] std::string loc_str() const {
    return file + ":" + std::to_string(line);
  }
};

/// A parsed deepmc-manifest-v1 document.
struct Manifest {
  std::string schema = "deepmc-manifest-v1";
  std::string program;    ///< unit name, e.g. "gen/s42"
  uint64_t seed = 0;
  std::string framework;  ///< "pmdk" / "pmfs" / "nvmdirect" / "mnemosyne"
  std::string model;      ///< "strict" / "epoch" / "strand"
  bool clean = false;     ///< guaranteed-clean control program (no bugs)
  std::string source_file;
  uint32_t line_count = 0;  ///< lines in the synthetic source file
  std::vector<PlantedBug> bugs;
};

/// Render a manifest as deepmc-manifest-v1 JSON (stable key order,
/// byte-identical for identical inputs).
std::string manifest_json(const Manifest& m);

/// Parse manifest JSON produced by manifest_json(). Throws
/// std::invalid_argument on missing schema or malformed structure; the
/// parser accepts exactly the subset of JSON the serializer emits.
Manifest parse_manifest_json(std::string_view text);

}  // namespace deepmc::gen
