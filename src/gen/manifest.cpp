#include "gen/manifest.h"

#include <cctype>
#include <stdexcept>

#include "core/report.h"
#include "support/str.h"

namespace deepmc::gen {

const char* bug_kind_name(BugKind k) {
  switch (k) {
    case BugKind::kMissingFlush: return "missing-flush";
    case BugKind::kMissingFence: return "missing-fence";
    case BugKind::kMisorderedStore: return "misordered-store";
    case BugKind::kRedundantFlush: return "redundant-flush";
    case BugKind::kOversizedEpoch: return "oversized-epoch";
    case BugKind::kUnflushedCommit: return "unflushed-commit";
  }
  return "?";
}

std::optional<BugKind> parse_bug_kind(std::string_view name) {
  for (size_t i = 0; i < kBugKindCount; ++i) {
    const auto k = static_cast<BugKind>(i);
    if (name == bug_kind_name(k)) return k;
  }
  return std::nullopt;
}

const char* bug_kind_rule(BugKind kind, core::PersistencyModel model) {
  switch (kind) {
    case BugKind::kMissingFlush:
      // The unflushed write reaches an explicit barrier; the fence handler
      // reports strict.unflushed-write under every model.
      return "strict.unflushed-write";
    case BugKind::kMissingFence:
      return "strict.missing-barrier";
    case BugKind::kMisorderedStore:
      // The re-issued store reaches the barrier unflushed.
      return "strict.unflushed-write";
    case BugKind::kRedundantFlush:
      return "perf.redundant-flush";
    case BugKind::kOversizedEpoch:
      return "strict.multiple-writes";
    case BugKind::kUnflushedCommit:
      // Region-end checks name the model's own rule.
      return model == core::PersistencyModel::kStrict
                 ? "strict.unflushed-write"
                 : "epoch.unflushed-write";
  }
  return "?";
}

std::string manifest_json(const Manifest& m) {
  std::string out;
  out += "{\n";
  out += "  \"schema\": \"deepmc-manifest-v1\",\n";
  out += "  \"program\": " + core::json_quote(m.program) + ",\n";
  out += "  \"seed\": " + std::to_string(m.seed) + ",\n";
  out += "  \"framework\": " + core::json_quote(m.framework) + ",\n";
  out += "  \"model\": " + core::json_quote(m.model) + ",\n";
  out += std::string("  \"clean\": ") + (m.clean ? "true" : "false") + ",\n";
  out += "  \"source_file\": " + core::json_quote(m.source_file) + ",\n";
  out += "  \"line_count\": " + std::to_string(m.line_count) + ",\n";
  out += "  \"bugs\": [";
  for (size_t i = 0; i < m.bugs.size(); ++i) {
    const PlantedBug& b = m.bugs[i];
    out += i ? ",\n" : "\n";
    out += "    {\"kind\": " + core::json_quote(bug_kind_name(b.kind));
    out += ", \"rule\": " + core::json_quote(b.rule);
    out += ", \"file\": " + core::json_quote(b.file);
    out += ", \"line\": " + std::to_string(b.line);
    out += ", \"function\": " + core::json_quote(b.function) + "}";
  }
  out += m.bugs.empty() ? "]\n" : "\n  ]\n";
  out += "}\n";
  return out;
}

namespace {

/// Minimal scanner for the JSON subset manifest_json() emits. It is not a
/// general JSON parser: strings have no escapes beyond \" \\ (json_quote
/// escapes control characters, which the manifest never contains).
class Scanner {
 public:
  explicit Scanner(std::string_view text) : text_(text) {}

  void skip_ws() {
    while (pos_ < text_.size() && std::isspace(static_cast<unsigned char>(
                                      text_[pos_])))
      ++pos_;
  }

  bool eat(char c) {
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  void expect(char c) {
    if (!eat(c))
      throw std::invalid_argument(
          strformat("manifest: expected '%c' at offset %zu", c,
                             pos_));
  }

  [[nodiscard]] char peek() {
    skip_ws();
    return pos_ < text_.size() ? text_[pos_] : '\0';
  }

  std::string string() {
    expect('"');
    std::string out;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      char c = text_[pos_++];
      if (c == '\\' && pos_ < text_.size()) c = text_[pos_++];
      out += c;
    }
    expect('"');
    return out;
  }

  uint64_t number() {
    skip_ws();
    const size_t start = pos_;
    while (pos_ < text_.size() &&
           std::isdigit(static_cast<unsigned char>(text_[pos_])))
      ++pos_;
    if (pos_ == start)
      throw std::invalid_argument("manifest: expected a number");
    return std::stoull(std::string(text_.substr(start, pos_ - start)));
  }

  bool boolean() {
    skip_ws();
    if (text_.compare(pos_, 4, "true") == 0) {
      pos_ += 4;
      return true;
    }
    if (text_.compare(pos_, 5, "false") == 0) {
      pos_ += 5;
      return false;
    }
    throw std::invalid_argument("manifest: expected true/false");
  }

 private:
  std::string_view text_;
  size_t pos_ = 0;
};

PlantedBug parse_bug(Scanner& s) {
  PlantedBug b;
  s.expect('{');
  bool first = true;
  while (s.peek() != '}') {
    if (!first) s.expect(',');
    first = false;
    const std::string key = s.string();
    s.expect(':');
    if (key == "kind") {
      const std::string kind = s.string();
      auto k = parse_bug_kind(kind);
      if (!k)
        throw std::invalid_argument("manifest: unknown bug kind '" + kind +
                                    "'");
      b.kind = *k;
    } else if (key == "rule") {
      b.rule = s.string();
    } else if (key == "file") {
      b.file = s.string();
    } else if (key == "line") {
      b.line = static_cast<uint32_t>(s.number());
    } else if (key == "function") {
      b.function = s.string();
    } else {
      throw std::invalid_argument("manifest: unknown bug key '" + key + "'");
    }
  }
  s.expect('}');
  return b;
}

}  // namespace

Manifest parse_manifest_json(std::string_view text) {
  Scanner s(text);
  Manifest m;
  m.schema.clear();
  s.expect('{');
  bool first = true;
  while (s.peek() != '}') {
    if (!first) s.expect(',');
    first = false;
    const std::string key = s.string();
    s.expect(':');
    if (key == "schema") {
      m.schema = s.string();
    } else if (key == "program") {
      m.program = s.string();
    } else if (key == "seed") {
      m.seed = s.number();
    } else if (key == "framework") {
      m.framework = s.string();
    } else if (key == "model") {
      m.model = s.string();
    } else if (key == "clean") {
      m.clean = s.boolean();
    } else if (key == "source_file") {
      m.source_file = s.string();
    } else if (key == "line_count") {
      m.line_count = static_cast<uint32_t>(s.number());
    } else if (key == "bugs") {
      s.expect('[');
      while (s.peek() != ']') {
        if (!m.bugs.empty()) s.expect(',');
        m.bugs.push_back(parse_bug(s));
      }
      s.expect(']');
    } else {
      throw std::invalid_argument("manifest: unknown key '" + key + "'");
    }
  }
  s.expect('}');
  if (m.schema != "deepmc-manifest-v1")
    throw std::invalid_argument("manifest: schema is not deepmc-manifest-v1");
  return m;
}

}  // namespace deepmc::gen
