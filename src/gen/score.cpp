#include "gen/score.h"

namespace deepmc::gen {

void Score::merge(const Score& other) {
  programs += other.programs;
  clean_programs += other.clean_programs;
  planted += other.planted;
  reported += other.reported;
  tp += other.tp;
  fp += other.fp;
  fn += other.fn;
  rule_mismatches += other.rule_mismatches;
  for (size_t i = 0; i < kBugKindCount; ++i) {
    planted_by_kind[i] += other.planted_by_kind[i];
    detected_by_kind[i] += other.detected_by_kind[i];
  }
  confirmed_tp += other.confirmed_tp;
  confirmed_outside_manifest += other.confirmed_outside_manifest;
  not_reproduced += other.not_reproduced;
  skipped += other.skipped;
}

Score score_program(const Manifest& manifest,
                    const std::vector<ReportedWarning>& warnings) {
  Score s;
  s.programs = 1;
  if (manifest.clean) s.clean_programs = 1;
  s.planted = manifest.bugs.size();
  s.reported = warnings.size();

  std::vector<bool> matched(manifest.bugs.size(), false);
  for (const ReportedWarning& w : warnings) {
    bool is_tp = false;
    bool loc_match = false;
    for (size_t i = 0; i < manifest.bugs.size(); ++i) {
      const PlantedBug& b = manifest.bugs[i];
      if (b.file != w.file || b.line != w.line) continue;
      loc_match = true;
      if (b.rule == w.rule && !matched[i]) {
        matched[i] = true;
        is_tp = true;
        ++s.detected_by_kind[static_cast<size_t>(b.kind)];
        break;
      }
    }
    if (is_tp) {
      ++s.tp;
      if (w.validation && *w.validation == core::Validation::kConfirmed)
        ++s.confirmed_tp;
    } else {
      ++s.fp;
      if (loc_match) ++s.rule_mismatches;
      if (w.validation && *w.validation == core::Validation::kConfirmed)
        ++s.confirmed_outside_manifest;
    }
    if (w.validation) {
      if (*w.validation == core::Validation::kNotReproduced)
        ++s.not_reproduced;
      else if (*w.validation == core::Validation::kSkipped)
        ++s.skipped;
    }
  }
  for (size_t i = 0; i < manifest.bugs.size(); ++i) {
    ++s.planted_by_kind[static_cast<size_t>(manifest.bugs[i].kind)];
    if (!matched[i]) ++s.fn;
  }
  return s;
}

std::vector<ReportedWarning> warnings_of(const core::UnitReport& unit) {
  std::vector<ReportedWarning> out;
  const auto& warnings = unit.result.warnings();
  const bool has_validation =
      unit.crashsim.ran && unit.crashsim.validations.size() == warnings.size();
  out.reserve(warnings.size());
  for (size_t i = 0; i < warnings.size(); ++i) {
    ReportedWarning rw;
    rw.rule = warnings[i].rule;
    rw.file = warnings[i].loc.file;
    rw.line = warnings[i].loc.line;
    if (has_validation) rw.validation = unit.crashsim.validations[i];
    out.push_back(std::move(rw));
  }
  return out;
}

}  // namespace deepmc::gen
