// Deterministic MIR program generator with known-bug injection.
//
// The generator is the corpus-scale ground-truth engine (ROADMAP item 5):
// from a seed it derives a program over the pm.*/tx.* intrinsics in one of
// the four mini-framework idioms (pmdk / mnemosyne / nvmdirect / pmfs),
// built from self-contained "scenario blocks". Clean blocks follow the
// framework's persistency discipline exactly (logged transactional
// updates, flush+fence sequences, fenced epochs, strands, volatile noise,
// bulk init, diamond control flow); bug blocks are local corruptions of
// those shapes whose warning site and rule id are known by construction
// and recorded in a deepmc-manifest-v1 manifest (src/gen/manifest.h).
//
// Determinism contract (pinned by tests/gen_test.cpp): the same options
// produce a byte-identical program text and manifest on every run and
// platform — generation draws only from support/rng.h's splitmix64 stream,
// never from global state, time, or addresses.
//
// Every block allocates fresh persistent objects, so a block's trace state
// (pending flushes, region siblings, write sets) cannot leak warnings into
// a neighbouring block: a generated program's expected report is exactly
// its manifest. The misordered-store and missing-fence shapes depend on
// where the trace ends, so missing-fence bugs are only planted in a
// function's final block.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "corpus/registry.h"
#include "gen/manifest.h"
#include "ir/module.h"

namespace deepmc::gen {

struct GenOptions {
  uint64_t seed = 0;
  /// Force one framework idiom; default derives it from the seed.
  std::optional<corpus::Framework> framework;
  /// Emit a guaranteed-clean control program (no bugs planted).
  bool force_clean = false;
  /// Share of seeds that come out clean when not forced (deterministic
  /// per seed).
  double clean_probability = 0.2;
  /// Function count is 1..max_functions; blocks per function
  /// 1..max_blocks_per_function.
  size_t max_functions = 3;
  size_t max_blocks_per_function = 4;
  /// Planted bugs per non-clean program: 1..max_bugs (capped by the
  /// number of scenario slots).
  size_t max_bugs = 3;
};

struct GeneratedProgram {
  std::string name;  ///< unit name, "gen/s<seed>"
  corpus::Framework framework = corpus::Framework::kPmdk;
  core::PersistencyModel model = core::PersistencyModel::kStrict;
  std::unique_ptr<ir::Module> module;  ///< verified, ready to analyze
  std::string text;                    ///< printed MIR (parses back)
  Manifest manifest;                   ///< planted-bug ground truth
  bool clean = false;
  uint64_t seed = 0;
};

/// Generate one program. The result's module always passes ir::verify and
/// its text parses back to an equivalent module.
GeneratedProgram generate_program(const GenOptions& opts);

/// Corrupt `tokens` whitespace-delimited tokens of `text` deterministically
/// (seeded): deletions, garbage substitutions, duplications, truncations,
/// overflowing integers, and unterminated strings. Exercises
/// parse_module_tolerant's recovery over generator-shaped input
/// (tests/fuzz/gen-mutated-*.mir are committed outputs of this function).
std::string mutate_text(const std::string& text, uint64_t seed,
                        size_t tokens);

/// Deterministic single-function edit: bump one stored integer constant
/// in one `define`d function of `text` (picked by `salt`), leaving every
/// other function byte-identical. The result still parses and verifies —
/// it models a developer touching one function between analysis-server
/// submissions, so tests and benches can measure dirty-cone recomputation
/// on a tiny diff. Returns `text` unchanged when no function stores an
/// integer constant.
std::string touch_function(const std::string& text, uint64_t salt);

}  // namespace deepmc::gen
