// Precision/recall scoring of checker reports against planted-bug
// manifests.
//
// A reported warning is a true positive when the manifest lists a planted
// bug with the same rule id at the same (file, line); everything else the
// checker reports on a generated program is a false positive, and every
// planted bug with no matching warning is a false negative. This is the
// same location-keyed matching the hand-written registry uses, applied at
// corpus scale (tests/corpus_score_test.cpp pins the arithmetic; the
// floors live in scripts/run_corpus.sh and tests/golden/
// corpus_baseline.json).
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "core/analysis_driver.h"
#include "gen/manifest.h"

namespace deepmc::gen {

/// One warning as seen by the scorer: just the match key plus the crashsim
/// verdict when the driver ran with crash-state validation.
struct ReportedWarning {
  std::string rule;
  std::string file;
  uint32_t line = 0;
  std::optional<core::Validation> validation;
};

/// Aggregated scoring over one or many program/manifest pairs.
struct Score {
  uint64_t programs = 0;        ///< programs scored
  uint64_t clean_programs = 0;  ///< guaranteed-clean controls among them
  uint64_t planted = 0;         ///< manifest entries
  uint64_t reported = 0;        ///< warnings reported
  uint64_t tp = 0;              ///< warning matches a planted (rule, loc)
  uint64_t fp = 0;              ///< warning with no planted counterpart
  uint64_t fn = 0;              ///< planted bug never reported
  /// Warnings at a planted location but with a different rule id — counted
  /// as FP+FN, tallied separately because they usually mean a template and
  /// the checker disagree about the rule, not about the bug.
  uint64_t rule_mismatches = 0;

  /// Per-kind planted / detected tallies (index by BugKind).
  uint64_t planted_by_kind[kBugKindCount] = {};
  uint64_t detected_by_kind[kBugKindCount] = {};

  // Crashsim cross-check tallies (only populated when warnings carry
  // validation verdicts).
  uint64_t confirmed_tp = 0;  ///< confirmed warning matching the manifest
  /// Confirmed warnings NOT in the manifest: the enumerator found a real
  /// crash-state violation the generator did not plant — a template bug.
  uint64_t confirmed_outside_manifest = 0;
  uint64_t not_reproduced = 0;
  uint64_t skipped = 0;

  [[nodiscard]] double precision() const {
    const uint64_t denom = tp + fp;
    return denom == 0 ? 1.0 : static_cast<double>(tp) / static_cast<double>(denom);
  }
  [[nodiscard]] double recall() const {
    return planted == 0 ? 1.0
                        : static_cast<double>(tp) / static_cast<double>(planted);
  }

  void merge(const Score& other);
};

/// Score one program's report against its manifest.
Score score_program(const Manifest& manifest,
                    const std::vector<ReportedWarning>& warnings);

/// Flatten a driver unit report into the scorer's warning view, attaching
/// crashsim verdicts when present.
std::vector<ReportedWarning> warnings_of(const core::UnitReport& unit);

}  // namespace deepmc::gen
