// Recorded persistence-event logs: the input to crash-state enumeration.
//
// An EventRecorder attaches to a pmem::PmPool as its PmEventSink and turns
// the raw event stream (stores with payloads, flushes, fences) plus the
// interpreter's annotation channel (source locations, tx/epoch/strand region
// boundaries, tx.add hints) into a flat, replayable EventLog. The log prefix
// before the n-th *counted* event is, by construction, exactly what a crash
// injected at that point has observed — pool events are reported only after
// fault injection lets them happen — which is what lets the enumerator and
// the linear fault-injection sweep be cross-checked image-for-image.
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <vector>

#include "pmem/pool.h"
#include "support/source_loc.h"

namespace deepmc::crash {

enum class EventKind : uint8_t {
  kStore,
  kFlush,
  kFence,
  kRegionBegin,
  kRegionEnd,
  kTxAdd,
};

struct Event {
  EventKind kind;
  uint64_t off = 0;
  uint64_t size = 0;
  std::vector<uint8_t> bytes;  ///< store payload
  SourceLoc loc;               ///< sticky source location (may be invalid)
  uint8_t region_kind = 0;     ///< ir::RegionKind for region begin/end
  uint64_t alloc_base = 0;     ///< store: containing allocation (0 = none)
  bool counted = true;         ///< advances PmPool::event_count()
};

/// A recorded execution: the event sequence plus the persisted baseline of
/// every cacheline the execution touched (captured at first touch).
struct EventLog {
  std::vector<Event> events;
  std::map<uint64_t, std::array<uint8_t, pmem::kCachelineBytes>> line_bases;

  /// Number of counted events (= pool event_count delta over the window).
  [[nodiscard]] size_t counted_events() const;
};

class EventRecorder final : public pmem::PmEventSink {
 public:
  /// Attaches to `pool` immediately. The recorder must outlive the
  /// attachment; the destructor detaches.
  explicit EventRecorder(pmem::PmPool& pool);
  ~EventRecorder() override;

  EventRecorder(const EventRecorder&) = delete;
  EventRecorder& operator=(const EventRecorder&) = delete;

  /// Stop recording (idempotent). Call before replaying recovery on the
  /// same pool, so recovery's own events do not pollute the log.
  void detach();

  [[nodiscard]] const EventLog& log() const { return log_; }
  EventLog take_log() { return std::move(log_); }

  // --- PmEventSink ------------------------------------------------------
  void on_line_base(uint64_t line, const uint8_t* persisted64) override;
  void on_store(uint64_t off, const void* src, uint64_t size,
                bool counted) override;
  void on_flush(uint64_t off, uint64_t size) override;
  void on_fence() override;
  void on_source_loc(const SourceLoc& loc) override;
  void on_region_begin(uint8_t kind, const SourceLoc& loc) override;
  void on_region_end(uint8_t kind, const SourceLoc& loc) override;
  void on_tx_add(uint64_t off, uint64_t size, const SourceLoc& loc) override;

 private:
  pmem::PmPool* pool_;
  EventLog log_;
  SourceLoc current_loc_;
};

}  // namespace deepmc::crash
