#include "crash/event_log.h"

#include <cstring>

namespace deepmc::crash {

size_t EventLog::counted_events() const {
  size_t n = 0;
  for (const Event& e : events) n += e.counted ? 1 : 0;
  return n;
}

EventRecorder::EventRecorder(pmem::PmPool& pool) : pool_(&pool) {
  pool_->set_event_sink(this);
}

EventRecorder::~EventRecorder() { detach(); }

void EventRecorder::detach() {
  if (pool_ && pool_->event_sink() == this) pool_->set_event_sink(nullptr);
  pool_ = nullptr;
}

void EventRecorder::on_line_base(uint64_t line, const uint8_t* persisted64) {
  auto& base = log_.line_bases[line];
  std::memcpy(base.data(), persisted64, pmem::kCachelineBytes);
}

void EventRecorder::on_store(uint64_t off, const void* src, uint64_t size,
                             bool counted) {
  Event e;
  e.kind = EventKind::kStore;
  e.off = off;
  e.size = size;
  e.bytes.resize(size);
  std::memcpy(e.bytes.data(), src, size);
  e.loc = current_loc_;
  e.alloc_base = pool_ ? pool_->alloc_base(off) : 0;
  e.counted = counted;
  log_.events.push_back(std::move(e));
}

void EventRecorder::on_flush(uint64_t off, uint64_t size) {
  Event e;
  e.kind = EventKind::kFlush;
  e.off = off;
  e.size = size;
  e.loc = current_loc_;
  log_.events.push_back(std::move(e));
}

void EventRecorder::on_fence() {
  Event e;
  e.kind = EventKind::kFence;
  e.loc = current_loc_;
  log_.events.push_back(std::move(e));
}

void EventRecorder::on_source_loc(const SourceLoc& loc) {
  if (loc.valid()) current_loc_ = loc;
}

void EventRecorder::on_region_begin(uint8_t kind, const SourceLoc& loc) {
  Event e;
  e.kind = EventKind::kRegionBegin;
  e.region_kind = kind;
  e.loc = loc;
  e.counted = false;
  log_.events.push_back(std::move(e));
}

void EventRecorder::on_region_end(uint8_t kind, const SourceLoc& loc) {
  Event e;
  e.kind = EventKind::kRegionEnd;
  e.region_kind = kind;
  e.loc = loc;
  e.counted = false;
  log_.events.push_back(std::move(e));
}

void EventRecorder::on_tx_add(uint64_t off, uint64_t size,
                              const SourceLoc& loc) {
  Event e;
  e.kind = EventKind::kTxAdd;
  e.off = off;
  e.size = size;
  e.loc = loc;
  e.counted = false;
  log_.events.push_back(std::move(e));
}

}  // namespace deepmc::crash
