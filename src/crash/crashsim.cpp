#include "crash/crashsim.h"

#include <exception>

#include "interp/interp.h"
#include "pmem/latency.h"

namespace deepmc::crash {

RootCrashSim simulate_root(const ir::Module& module, const ir::Function& root,
                           const CrashSimOptions& opts) {
  RootCrashSim out;
  out.root = root.name();

  pmem::PmPool pool(opts.pool_bytes, pmem::LatencyModel::zero());
  EventRecorder recorder(pool);
  {
    interp::Interpreter::Options iopts;
    iopts.max_steps = opts.max_steps;
    interp::Interpreter interp(module, pool, /*runtime=*/nullptr, iopts);
    try {
      interp.run(root);
      out.executed = true;
    } catch (const std::exception& e) {
      out.error = e.what();
    }
  }
  recorder.detach();  // recovery replay below must not extend the log
  const EventLog log = recorder.take_log();
  if (!out.executed) return out;

  out.witnesses = analyze_log(log, opts.model);

  const std::unique_ptr<RecoveryOracle> oracle = make_oracle(opts.framework);
  Enumerator::Options eopts;
  eopts.model = opts.model;
  eopts.granularity = Granularity::kStoreRange;
  eopts.include_dirty = true;
  eopts.max_subset_bits = opts.max_subset_bits;
  const Enumerator enumerator(log, eopts);
  out.stats = enumerator.enumerate([&](const CrashImage& image) {
    if (!oracle) {
      ++out.images_skipped;
      return;
    }
    // A fresh pool per image: the image domain covers every line the
    // execution touched, and untouched lines are identical between a fresh
    // pool and the crashed one, so this reproduces the post-crash persisted
    // state exactly without cross-image contamination.
    pmem::PmPool replay_pool(opts.pool_bytes, pmem::LatencyModel::zero());
    switch (oracle->classify(replay_pool, image, opts.invariant)) {
      case RecoveryOutcome::kConsistent:
        ++out.images_consistent;
        break;
      case RecoveryOutcome::kInconsistent:
        ++out.images_inconsistent;
        break;
      case RecoveryOutcome::kSkipped:
        ++out.images_skipped;
        break;
    }
  });
  return out;
}

std::set<std::string> call_closure(const ir::Module& module,
                                   const std::vector<std::string>& roots) {
  std::set<std::string> seen;
  std::vector<const ir::Function*> work;
  for (const std::string& r : roots) {
    const ir::Function* f = module.find_function(r);
    if (f && !f->is_declaration() && seen.insert(f->name()).second)
      work.push_back(f);
  }
  while (!work.empty()) {
    const ir::Function* f = work.back();
    work.pop_back();
    for (const auto& bb : f->blocks()) {
      for (const auto& inst : bb->instructions()) {
        if (inst->opcode() != ir::Opcode::kCall) continue;
        const auto* call = static_cast<const ir::CallInst*>(inst.get());
        const ir::Function* callee = module.find_function(call->callee());
        if (callee && !callee->is_declaration() &&
            seen.insert(callee->name()).second)
          work.push_back(callee);
      }
    }
  }
  return seen;
}

}  // namespace deepmc::crash
