#include "crash/crashsim.h"

#include <exception>

#include "interp/interp.h"
#include "obs/metrics.h"
#include "obs/tracer.h"
#include "pmem/latency.h"
#include "support/faultpoint.h"

namespace deepmc::crash {

namespace {

// Enumeration is a deterministic walk of one recorded execution, so every
// count below is stable across runs and --jobs values.

obs::Counter stable_counter(const char* name, const char* help) {
  return obs::registry().counter(name, obs::Volatility::kStable, help);
}

void publish_root_obs(const RootCrashSim& out) {
  static obs::Counter roots =
      stable_counter("crash.roots_total", "roots crash-simulated");
  static obs::Counter failed = stable_counter(
      "crash.roots_failed_total", "roots whose pre-crash execution trapped");
  static obs::Counter points = stable_counter(
      "crash.crash_points_total", "crash positions in recorded logs");
  static obs::Counter images =
      stable_counter("crash.images_total", "distinct crash images visited");
  static obs::Counter witnesses = stable_counter(
      "crash.witnesses_total", "ordering/durability witnesses extracted");
  static obs::Counter consistent = stable_counter(
      "crash.images_consistent_total", "images recovery classified consistent");
  static obs::Counter inconsistent = stable_counter(
      "crash.images_inconsistent_total",
      "images recovery classified inconsistent");
  static obs::Counter skipped = stable_counter(
      "crash.images_skipped_total", "images with no applicable oracle");
  static obs::Counter pruned = stable_counter(
      "crash.points_pruned_total", "crash points removed by commit pruning");
  static obs::Counter dup_subsets = stable_counter(
      "crash.duplicate_subsets_total", "subsets collapsing to a seen image");
  static obs::Counter capped = stable_counter(
      "crash.capped_points_total", "crash points hit by the subset cap");
  roots.inc();
  if (!out.executed) failed.inc();
  points.inc(out.stats.crash_points);
  images.inc(out.stats.images);
  witnesses.inc(out.witnesses.size());
  consistent.inc(out.images_consistent);
  inconsistent.inc(out.images_inconsistent);
  skipped.inc(out.images_skipped);
  pruned.inc(out.stats.points_pruned);
  dup_subsets.inc(out.stats.duplicate_subsets);
  capped.inc(out.stats.capped_points);
}

}  // namespace

RootCrashSim simulate_root(const ir::Module& module, const ir::Function& root,
                           const CrashSimOptions& opts) {
  obs::Span root_span("crashsim.root", "crash",
                      obs::span_arg("root", root.name()));
  RootCrashSim out;
  out.root = root.name();

  pmem::PmPool pool(opts.pool_bytes, pmem::LatencyModel::zero());
  EventRecorder recorder(pool);
  {
    obs::Span exec_span("crashsim.execute", "crash");
    interp::Interpreter::Options iopts;
    iopts.max_steps = opts.max_steps;
    if (opts.interp_step_budget > 0 && opts.interp_step_budget < iopts.max_steps)
      iopts.max_steps = opts.interp_step_budget;
    iopts.cancel = opts.cancel;
    interp::Interpreter interp(module, pool, /*runtime=*/nullptr, iopts);
    try {
      interp.run(root);
      out.executed = true;
    } catch (const support::FaultInjected&) {
      throw;  // resilience-layer signals classify the unit, not the root
    } catch (const support::CancelledError&) {
      throw;
    } catch (const support::BudgetExceeded&) {
      throw;
    } catch (const interp::StepLimitReached& e) {
      // With an explicit budget this is a degradation signal; without one
      // it is the pre-existing safety net and stays a per-root trap.
      if (opts.interp_step_budget > 0)
        throw support::BudgetExceeded("interp.steps", e.limit());
      out.error = e.what();
    } catch (const std::exception& e) {
      out.error = e.what();
    }
  }
  recorder.detach();  // recovery replay below must not extend the log
  const EventLog log = recorder.take_log();
  if (!out.executed) {
    if (obs::enabled()) publish_root_obs(out);
    return out;
  }

  {
    obs::Span witness_span("crashsim.witness", "crash");
    out.witnesses = analyze_log(log, opts.model);
  }

  const std::unique_ptr<RecoveryOracle> oracle = make_oracle(opts.framework);
  Enumerator::Options eopts;
  eopts.model = opts.model;
  eopts.granularity = Granularity::kStoreRange;
  eopts.include_dirty = true;
  eopts.max_subset_bits = opts.max_subset_bits;
  // Per-root meter: this enumeration covers exactly one root's log.
  support::Budget image_budget("enum.images", opts.image_budget);
  image_budget.set_cancel(opts.cancel);
  eopts.image_budget = &image_budget;
  const Enumerator enumerator(log, eopts);
  obs::Span enum_span("crashsim.enumerate", "crash");
  out.stats = enumerator.enumerate([&](const CrashImage& image) {
    if (!oracle) {
      ++out.images_skipped;
      return;
    }
    // A fresh pool per image: the image domain covers every line the
    // execution touched, and untouched lines are identical between a fresh
    // pool and the crashed one, so this reproduces the post-crash persisted
    // state exactly without cross-image contamination.
    pmem::PmPool replay_pool(opts.pool_bytes, pmem::LatencyModel::zero());
    switch (oracle->classify(replay_pool, image, opts.invariant)) {
      case RecoveryOutcome::kConsistent:
        ++out.images_consistent;
        break;
      case RecoveryOutcome::kInconsistent:
        ++out.images_inconsistent;
        break;
      case RecoveryOutcome::kSkipped:
        ++out.images_skipped;
        break;
    }
  });
  if (obs::enabled()) publish_root_obs(out);
  return out;
}

std::set<std::string> call_closure(const ir::Module& module,
                                   const std::vector<std::string>& roots) {
  std::set<std::string> seen;
  std::vector<const ir::Function*> work;
  for (const std::string& r : roots) {
    const ir::Function* f = module.find_function(r);
    if (f && !f->is_declaration() && seen.insert(f->name()).second)
      work.push_back(f);
  }
  while (!work.empty()) {
    const ir::Function* f = work.back();
    work.pop_back();
    for (const auto& bb : f->blocks()) {
      for (const auto& inst : bb->instructions()) {
        if (inst->opcode() != ir::Opcode::kCall) continue;
        const auto* call = static_cast<const ir::CallInst*>(inst.get());
        const ir::Function* callee = module.find_function(call->callee());
        if (callee && !callee->is_declaration() &&
            seen.insert(callee->name()).second)
          work.push_back(callee);
      }
    }
  }
  return seen;
}

}  // namespace deepmc::crash
