#include "crash/recovery_oracle.h"

#include "frameworks/mnemosyne_mini.h"
#include "frameworks/nvmdirect_mini.h"
#include "frameworks/pmdk_mini.h"
#include "frameworks/pmfs_mini.h"
#include "obs/metrics.h"

namespace deepmc::crash {

namespace {

// Replay outcomes are a pure function of the crash image, so stable.

obs::Counter& replays() {
  static obs::Counter c = obs::registry().counter(
      "crash.recovery_replays_total", obs::Volatility::kStable,
      "recovery-oracle classifications performed");
  return c;
}

obs::Counter& replay_outcome(RecoveryOutcome o) {
  static obs::Counter consistent = obs::registry().counter(
      "crash.recovery_consistent_total", obs::Volatility::kStable,
      "replays ending in a consistent recovered state");
  static obs::Counter inconsistent = obs::registry().counter(
      "crash.recovery_inconsistent_total", obs::Volatility::kStable,
      "replays ending in an inconsistent recovered state");
  static obs::Counter skipped = obs::registry().counter(
      "crash.recovery_skipped_total", obs::Volatility::kStable,
      "replays the oracle could not classify");
  switch (o) {
    case RecoveryOutcome::kConsistent: return consistent;
    case RecoveryOutcome::kInconsistent: return inconsistent;
    case RecoveryOutcome::kSkipped: break;
  }
  return skipped;
}

RecoveryOutcome record_outcome(RecoveryOutcome o) {
  if (obs::enabled()) {
    replays().inc();
    replay_outcome(o).inc();
  }
  return o;
}

}  // namespace

RecoveryOutcome RecoveryOracle::classify(pmem::PmPool& pool,
                                         const CrashImage& image,
                                         const Invariant& invariant) const {
  try {
    pool.install_image(image.lines);
    recover(pool);
  } catch (...) {
    // Recovery could not even parse the persisted state.
    return record_outcome(RecoveryOutcome::kInconsistent);
  }
  if (!invariant) return record_outcome(RecoveryOutcome::kConsistent);
  try {
    return record_outcome(invariant(pool) ? RecoveryOutcome::kConsistent
                                          : RecoveryOutcome::kInconsistent);
  } catch (...) {
    return record_outcome(RecoveryOutcome::kInconsistent);
  }
}

namespace {

class PmdkOracle final : public RecoveryOracle {
 public:
  [[nodiscard]] std::string name() const override { return "pmdk_mini"; }

 protected:
  void recover(pmem::PmPool& pool) const override {
    pmdk::ObjPool op(pool);
    pmdk::recover(op);
  }
};

class MnemosyneOracle final : public RecoveryOracle {
 public:
  [[nodiscard]] std::string name() const override { return "mnemosyne_mini"; }

 protected:
  void recover(pmem::PmPool& pool) const override {
    mnemosyne::Mnemosyne m(pool);
    m.recover();
  }
};

class PmfsOracle final : public RecoveryOracle {
 public:
  [[nodiscard]] std::string name() const override { return "pmfs_mini"; }

 protected:
  void recover(pmem::PmPool& pool) const override {
    (void)pmfs::Pmfs::mount(pool);
  }
};

class NvmdirectOracle final : public RecoveryOracle {
 public:
  [[nodiscard]] std::string name() const override { return "nvmdirect_mini"; }

 protected:
  void recover(pmem::PmPool& pool) const override {
    (void)nvmdirect::NvmRegion::attach(pool);
  }
};

}  // namespace

std::unique_ptr<RecoveryOracle> make_pmdk_oracle() {
  return std::make_unique<PmdkOracle>();
}
std::unique_ptr<RecoveryOracle> make_mnemosyne_oracle() {
  return std::make_unique<MnemosyneOracle>();
}
std::unique_ptr<RecoveryOracle> make_pmfs_oracle() {
  return std::make_unique<PmfsOracle>();
}
std::unique_ptr<RecoveryOracle> make_nvmdirect_oracle() {
  return std::make_unique<NvmdirectOracle>();
}

std::unique_ptr<RecoveryOracle> make_oracle(const std::string& framework) {
  if (framework == "pmdk_mini") return make_pmdk_oracle();
  if (framework == "mnemosyne_mini") return make_mnemosyne_oracle();
  if (framework == "pmfs_mini") return make_pmfs_oracle();
  if (framework == "nvmdirect_mini") return make_nvmdirect_oracle();
  return nullptr;
}

}  // namespace deepmc::crash
