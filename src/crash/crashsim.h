// Per-root crash simulation: record, enumerate, witness, classify.
//
// simulate_root() drives the full pipeline for one trace root: execute the
// function on a fresh pool with an EventRecorder attached, run the trace
// oracle over the recorded log to extract witnesses, enumerate every
// reachable crash image (counting the pruned state space), and — when the
// unit names a framework — replay that framework's recovery on each image
// to classify it consistent or inconsistent.
//
// Everything here is deterministic and self-contained, so the analysis
// driver can fan roots across its thread pool and merge results in root
// order for byte-identical reports at any --jobs value.
#pragma once

#include <set>
#include <string>
#include <vector>

#include "crash/enumerator.h"
#include "crash/recovery_oracle.h"
#include "crash/trace_oracle.h"
#include "ir/module.h"

namespace deepmc::crash {

struct CrashSimOptions {
  core::PersistencyModel model = core::PersistencyModel::kStrict;
  /// Framework tag for the recovery oracle ("pmdk_mini", ...); empty or
  /// unknown disables recovery replay (images are then only enumerated).
  std::string framework;
  /// Optional recovered-state invariant evaluated after each replay.
  Invariant invariant;
  size_t max_subset_bits = 10;
  uint64_t pool_bytes = 1ull << 22;
  uint64_t max_steps = 2'000'000;
  /// Resilience-layer budgets (0 = unlimited). `interp_step_budget` caps
  /// the pre-crash execution and, unlike the safety-net `max_steps`,
  /// surfaces exhaustion as support::BudgetExceeded (so the driver can
  /// degrade the unit instead of recording a trap). `image_budget` caps
  /// enumeration per root. The cancel token propagates into the
  /// interpreter and the budgets.
  uint64_t interp_step_budget = 0;
  uint64_t image_budget = 0;
  support::CancelToken cancel;
};

struct RootCrashSim {
  std::string root;
  bool executed = false;   ///< the root ran to completion
  std::string error;       ///< interpreter failure, when !executed
  Enumerator::Stats stats;
  std::vector<Witness> witnesses;
  uint64_t images_consistent = 0;
  uint64_t images_inconsistent = 0;
  uint64_t images_skipped = 0;  ///< no recovery oracle applicable
};

/// Simulate crashes for one zero-argument root function.
RootCrashSim simulate_root(const ir::Module& module, const ir::Function& root,
                           const CrashSimOptions& opts);

/// Names of defined functions reachable (via direct calls) from the given
/// roots — used to classify warnings in never-executed code as `skipped`.
std::set<std::string> call_closure(const ir::Module& module,
                                   const std::vector<std::string>& roots);

}  // namespace deepmc::crash
