#include "crash/trace_oracle.h"

#include <algorithm>
#include <map>
#include <set>

#include "support/str.h"

namespace deepmc::crash {

namespace {

using core::PersistencyModel;

/// Byte-interval union of all stores in `unit_ids`, as sorted merged ranges.
std::vector<std::pair<uint64_t, uint64_t>> range_union(
    const StoreReplay& replay, const std::vector<size_t>& unit_ids) {
  std::vector<std::pair<uint64_t, uint64_t>> ranges;
  for (size_t u : unit_ids) {
    const StoreUnit& s = replay.units()[u];
    ranges.emplace_back(s.off, s.off + s.size);
  }
  std::sort(ranges.begin(), ranges.end());
  std::vector<std::pair<uint64_t, uint64_t>> merged;
  for (const auto& r : ranges) {
    if (!merged.empty() && r.first <= merged.back().second)
      merged.back().second = std::max(merged.back().second, r.second);
    else
      merged.push_back(r);
  }
  return merged;
}

bool unions_overlap(const std::vector<std::pair<uint64_t, uint64_t>>& a,
                    const std::vector<std::pair<uint64_t, uint64_t>>& b) {
  size_t i = 0, j = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i].second <= b[j].first)
      ++i;
    else if (b[j].second <= a[i].first)
      ++j;
    else
      return true;
  }
  return false;
}

void add_culprit(std::vector<SourceLoc>& culprits, const SourceLoc& loc) {
  if (!loc.valid()) return;
  if (std::find(culprits.begin(), culprits.end(), loc) == culprits.end())
    culprits.push_back(loc);
}

// Rule A: unlogged store inside a logging transaction region.
void rule_rollback_exposure(const StoreReplay& replay,
                            std::vector<Witness>& out) {
  for (size_t r = 0; r < replay.regions().size(); ++r) {
    const RegionInfo& ri = replay.regions()[r];
    if (ri.kind != kRegionTx || ri.tx_adds == 0) continue;
    if (ri.end_event == kNoEvent) continue;
    for (size_t u = 0; u < replay.units().size(); ++u) {
      const StoreUnit& s = replay.units()[u];
      if (s.logged || !s.loc.valid()) continue;
      if (s.event <= ri.begin_event || s.event >= ri.end_event) continue;
      if (!replay.region_within(s.region, static_cast<int>(r))) continue;
      const size_t p = replay.crash_point_after(s.event, ri.end_event);
      if (p == kNoEvent) continue;
      Witness w;
      w.rule = "crash.rollback-exposure";
      w.point = p;
      add_culprit(w.culprits, s.loc);
      w.detail = strformat(
          "unlogged store %s can persist across a crash inside the "
          "transaction at %s; recovery rolls back the log but not this store",
          s.loc.str().c_str(), ri.begin_loc.str().c_str());
      w.image = replay.image_at(p, {u});
      out.push_back(std::move(w));
    }
  }
}

// Rule B: flushed-unfenced store crossing a region boundary or reaching the
// end of the execution.
void rule_unfenced_boundary(const StoreReplay& replay,
                            std::vector<Witness>& out) {
  const size_t n = replay.log().events.size();
  // Candidate boundary positions: first valid crash point at-or-after every
  // non-strand region begin/end marker, plus the end of the trace.
  std::vector<std::pair<size_t, SourceLoc>> boundaries;
  for (const RegionInfo& ri : replay.regions()) {
    if (ri.kind == kRegionStrand) continue;
    if (ri.begin_event != kNoEvent) {
      const size_t p = replay.crash_point_after(
          ri.begin_event == 0 ? 0 : ri.begin_event - 1, n);
      if (p != kNoEvent) boundaries.emplace_back(p, ri.begin_loc);
    }
    if (ri.end_event != kNoEvent) {
      const size_t p = replay.crash_point_after(ri.end_event - 1, n);
      if (p != kNoEvent) boundaries.emplace_back(p, ri.end_loc);
    }
  }
  boundaries.emplace_back(n, SourceLoc());
  std::sort(boundaries.begin(), boundaries.end());
  boundaries.erase(std::unique(boundaries.begin(), boundaries.end(),
                               [](const auto& a, const auto& b) {
                                 return a.first == b.first;
                               }),
                   boundaries.end());

  for (size_t u = 0; u < replay.units().size(); ++u) {
    const StoreUnit& s = replay.units()[u];
    if (s.logged || !s.loc.valid()) continue;
    for (const auto& [p, bloc] : boundaries) {
      if (!s.staged_by(p) || s.durable_by(p)) continue;
      Witness w;
      w.rule = "crash.unfenced-boundary";
      w.point = p;
      add_culprit(w.culprits, s.loc);
      add_culprit(w.culprits, s.staged_loc);
      w.detail = strformat(
          "store %s flushed at %s is still unfenced at %s; a crash here "
          "may lose it even though execution moved on",
          s.loc.str().c_str(), s.staged_loc.str().c_str(),
          p == n ? "the end of the run" : bloc.str().c_str());
      w.image = replay.image_at(p, {});
      out.push_back(std::move(w));
      break;  // one boundary witness per store suffices
    }
  }
}

// Rule C: one fence seals flushed stores to >= 2 distinct allocations.
void rule_torn_fence_group(const StoreReplay& replay,
                           std::vector<Witness>& out) {
  for (size_t pf : replay.fences()) {
    std::vector<size_t> group;
    std::set<uint64_t> bases;
    for (size_t u = 0; u < replay.units().size(); ++u) {
      const StoreUnit& s = replay.units()[u];
      if (s.logged || !s.loc.valid()) continue;
      if (!s.staged_by(pf) || s.durable_by(pf)) continue;
      if (s.alloc_base == 0) continue;
      group.push_back(u);
      bases.insert(s.alloc_base);
    }
    if (bases.size() < 2) continue;
    Witness w;
    w.rule = "crash.torn-fence-group";
    w.point = pf;
    for (size_t u : group) add_culprit(w.culprits, replay.units()[u].loc);
    add_culprit(w.culprits, replay.log().events[pf].loc);
    w.detail = strformat(
        "one fence at %s seals stores to %zu distinct objects; a crash at "
        "the fence can persist any strict subset, tearing the update",
        replay.log().events[pf].loc.str().c_str(), bases.size());
    w.image = replay.image_at(pf, {group.front()});
    out.push_back(std::move(w));
  }
}

// Rule D: consecutive sibling regions update disjoint parts of one object.
void rule_cross_region_tear(const StoreReplay& replay,
                            std::vector<Witness>& out) {
  const size_t n = replay.log().events.size();
  // Stores grouped by (region, alloc_base), logged stores included — the
  // tear is about object coverage, not logging.
  std::map<std::pair<int, uint64_t>, std::vector<size_t>> by_region_obj;
  for (size_t u = 0; u < replay.units().size(); ++u) {
    const StoreUnit& s = replay.units()[u];
    if (s.region < 0 || s.alloc_base == 0)
      continue;
    by_region_obj[{s.region, s.alloc_base}].push_back(u);
  }

  // Completed regions in end order; last completed sibling per depth,
  // clearing deeper entries on each completion (a completed region at depth
  // d invalidates any remembered deeper region — it belongs to an earlier
  // subtree).
  std::vector<size_t> completed;
  for (size_t r = 0; r < replay.regions().size(); ++r)
    if (replay.regions()[r].end_event != kNoEvent) completed.push_back(r);
  std::sort(completed.begin(), completed.end(), [&](size_t a, size_t b) {
    return replay.regions()[a].end_event < replay.regions()[b].end_event;
  });

  std::map<size_t, size_t> last_at_depth;
  for (size_t cur : completed) {
    const RegionInfo& ci = replay.regions()[cur];
    for (auto it = last_at_depth.upper_bound(ci.depth);
         it != last_at_depth.end();)
      it = last_at_depth.erase(it);
    auto prev_it = last_at_depth.find(ci.depth);
    const size_t prev = prev_it == last_at_depth.end() ? SIZE_MAX
                                                       : prev_it->second;
    last_at_depth[ci.depth] = cur;
    if (prev == SIZE_MAX) continue;
    const RegionInfo& pi = replay.regions()[prev];
    if (pi.parent != ci.parent) continue;
    if (pi.kind == kRegionStrand || ci.kind == kRegionStrand) continue;

    // Objects written in both regions with disjoint byte coverage.
    for (const auto& [key, prev_units] : by_region_obj) {
      if (key.first != static_cast<int>(prev)) continue;
      auto cur_it = by_region_obj.find({static_cast<int>(cur), key.second});
      if (cur_it == by_region_obj.end()) continue;
      const std::vector<size_t>& cur_units = cur_it->second;
      if (unions_overlap(range_union(replay, prev_units),
                         range_union(replay, cur_units)))
        continue;
      // Crash right after the current region's first store to the object:
      // is any previous-region store already durable, exposing a state
      // neither region's recovery path owns?
      const size_t first_store = replay.units()[cur_units.front()].event;
      const size_t p = replay.crash_point_after(first_store, n);
      if (p == kNoEvent) continue;
      bool prev_durable = false;
      for (size_t u : prev_units)
        prev_durable = prev_durable || replay.units()[u].durable_by(p);
      if (!prev_durable) continue;
      Witness w;
      w.rule = "crash.cross-region-tear";
      w.point = p;
      for (size_t u : prev_units) add_culprit(w.culprits, replay.units()[u].loc);
      for (size_t u : cur_units) add_culprit(w.culprits, replay.units()[u].loc);
      w.detail = strformat(
          "regions at %s and %s update disjoint parts of one object; a "
          "crash between them persists a half-updated state neither "
          "region's recovery covers",
          pi.begin_loc.str().c_str(), ci.begin_loc.str().c_str());
      w.image = replay.image_at(p, {});
      out.push_back(std::move(w));
    }
  }
}

// Rule E (strict model): persist order inverted against program order.
void rule_order_inversion(const StoreReplay& replay,
                          std::vector<Witness>& out) {
  const size_t n = replay.log().events.size();
  for (size_t su = 0; su < replay.units().size(); ++su) {
    const StoreUnit& s = replay.units()[su];
    if (s.logged || !s.loc.valid()) continue;
    if (s.staged_at != kNoEvent || s.durable_at != kNoEvent) continue;
    if (s.overwritten_at != kNoEvent) continue;
    for (size_t tu = 0; tu < replay.units().size(); ++tu) {
      const StoreUnit& t = replay.units()[tu];
      if (t.event <= s.event || t.durable_at == kNoEvent) continue;
      const size_t p = replay.crash_point_after(t.durable_at, n);
      if (p == kNoEvent) continue;
      Witness w;
      w.rule = "crash.order-inversion";
      w.point = p;
      add_culprit(w.culprits, s.loc);
      w.detail = strformat(
          "under strict persistency the store %s must persist before the "
          "later store %s, but only the later one is durable at this crash",
          s.loc.str().c_str(), t.loc.str().c_str());
      w.image = replay.image_at(p, {});
      out.push_back(std::move(w));
      break;  // one inversion witness per store suffices
    }
  }
}

// Rule F: store still dirty in cache after its region completed.
void rule_region_exit_unflushed(const StoreReplay& replay,
                                std::vector<Witness>& out) {
  const size_t n = replay.log().events.size();
  for (size_t r = 0; r < replay.regions().size(); ++r) {
    const RegionInfo& ri = replay.regions()[r];
    if (ri.kind == kRegionStrand || ri.end_event == kNoEvent) continue;
    const size_t p = replay.crash_point_after(ri.end_event, n);
    if (p == kNoEvent) continue;
    for (size_t u = 0; u < replay.units().size(); ++u) {
      const StoreUnit& s = replay.units()[u];
      if (s.logged || !s.loc.valid()) continue;
      if (!replay.region_within(s.region, static_cast<int>(r))) continue;
      if (!s.dirty_at(p)) continue;
      if (s.overwritten_at != kNoEvent && s.overwritten_at < p) continue;
      Witness w;
      w.rule = "crash.region-exit-unflushed";
      w.point = p;
      add_culprit(w.culprits, s.loc);
      w.detail = strformat(
          "store %s is still volatile when its region at %s completes; the "
          "region's durability contract ended with the data unflushed",
          s.loc.str().c_str(), ri.begin_loc.str().c_str());
      w.image = replay.image_at(p, {});
      out.push_back(std::move(w));
    }
  }
}

}  // namespace

std::vector<Witness> analyze_log(const EventLog& log, PersistencyModel model) {
  StoreReplay replay(log);
  std::vector<Witness> out;
  rule_rollback_exposure(replay, out);
  rule_unfenced_boundary(replay, out);
  rule_torn_fence_group(replay, out);
  rule_cross_region_tear(replay, out);
  if (model == PersistencyModel::kStrict) rule_order_inversion(replay, out);
  rule_region_exit_unflushed(replay, out);
  return out;
}

}  // namespace deepmc::crash
