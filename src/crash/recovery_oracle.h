// Recovery oracles: replay a framework's recovery path on an enumerated
// crash image and classify the outcome.
//
// Each oracle is the bridge between an abstract persisted image (a
// line -> bytes map from the enumerator) and a concrete framework's
// post-crash contract: install the image into the pool as if power was just
// restored, run the framework's recovery entry point (pmdk's undo-log
// replay, mnemosyne's log recovery, pmfs's journal-rollback mount,
// nvm_direct's region attach), then ask a user-supplied invariant whether
// the recovered state is acceptable. Exceptions escaping recovery — torn
// metadata the framework cannot even parse — classify as inconsistent.
//
// NOTE: detach any EventRecorder from the pool before replaying recovery,
// otherwise recovery's own stores pollute the recorded log.
#pragma once

#include <functional>
#include <memory>
#include <string>

#include "crash/enumerator.h"
#include "pmem/pool.h"

namespace deepmc::crash {

enum class RecoveryOutcome : uint8_t {
  kConsistent,    ///< recovery succeeded and the invariant held
  kInconsistent,  ///< recovery threw, or the invariant was violated
  kSkipped,       ///< no oracle applicable to this image
};

/// Returns true when the recovered pool satisfies the program's invariant.
using Invariant = std::function<bool(pmem::PmPool&)>;

class RecoveryOracle {
 public:
  virtual ~RecoveryOracle() = default;

  /// Framework tag, e.g. "pmdk_mini".
  [[nodiscard]] virtual std::string name() const = 0;

  /// Install `image` into `pool` (simulating the post-crash persisted
  /// state), run the framework's recovery entry point, then evaluate
  /// `invariant` (when given). Never throws: recovery failures classify.
  RecoveryOutcome classify(pmem::PmPool& pool, const CrashImage& image,
                           const Invariant& invariant) const;

 protected:
  /// Framework-specific recovery entry. Throwing means inconsistent.
  virtual void recover(pmem::PmPool& pool) const = 0;
};

/// pmdk_mini: ObjPool undo-log replay (pmdk::recover).
std::unique_ptr<RecoveryOracle> make_pmdk_oracle();
/// mnemosyne_mini: durable-transaction log recovery (Mnemosyne::recover).
std::unique_ptr<RecoveryOracle> make_mnemosyne_oracle();
/// pmfs_mini: journal rollback on mount (Pmfs::mount).
std::unique_ptr<RecoveryOracle> make_pmfs_oracle();
/// nvmdirect_mini: region attach (NvmRegion::attach).
std::unique_ptr<RecoveryOracle> make_nvmdirect_oracle();

/// The oracle for a framework tag ("pmdk_mini", "pmfs_mini",
/// "mnemosyne_mini", "nvmdirect_mini"); nullptr when unknown.
std::unique_ptr<RecoveryOracle> make_oracle(const std::string& framework);

}  // namespace deepmc::crash
