// Trace oracle: turns a recorded execution into crash *witnesses* — concrete
// (crash point, persisted-line subset) pairs whose image provably violates a
// persistency invariant, tagged with the source locations responsible.
//
// This is the dynamic half of end-to-end warning validation: the static
// checker names a suspicious line; a witness whose culprit set contains that
// line shows an actual reachable crash image gone wrong, upgrading the
// warning to `validation: confirmed`. The rules mirror the paper's
// persistency-model-violation taxonomy (Table 4), but operate on the event
// log rather than on MIR:
//
//  A crash.rollback-exposure    unlogged store inside a logging transaction:
//                               a crash mid-transaction rolls back the log
//                               yet the stray store may already be home.
//  B crash.unfenced-boundary    store flushed but not fenced across a
//                               region boundary (or still in flight at the
//                               end of execution): durability was assumed
//                               where only ordering-free staging exists.
//  C crash.torn-fence-group     one fence seals flushed stores to several
//                               distinct allocations: a crash at the fence
//                               can persist any strict subset, tearing the
//                               multi-object update.
//  D crash.cross-region-tear    two consecutive sibling regions update
//                               disjoint parts of the same allocation: a
//                               crash between them exposes a half-updated
//                               object that neither region's recovery owns.
//  E crash.order-inversion      (strict model) a store never flushed while a
//                               program-later store is already durable:
//                               persist order inverted program order.
//  F crash.region-exit-unflushed  store dirty in cache after its region
//                               completed: the region's durability contract
//                               ended with the data still volatile.
//
// The oracle abstains on bare stores with no flush, no region, and no later
// durable store: with no durability intent expressed there is no contract to
// violate (this keeps declared-external no-op flush helpers from producing
// false confirmations).
#pragma once

#include <string>
#include <vector>

#include "core/model.h"
#include "crash/enumerator.h"

namespace deepmc::crash {

struct Witness {
  std::string rule;                ///< crash.* rule id (see header comment)
  size_t point = 0;                ///< crash position into the event log
  std::vector<SourceLoc> culprits; ///< locations this witness implicates
  std::string detail;              ///< one-line human-readable explanation
  CrashImage image;                ///< the violating persisted image
};

/// Analyze one recorded root execution. Deterministic: witnesses are emitted
/// rule-by-rule (A..F) in event order.
std::vector<Witness> analyze_log(const EventLog& log,
                                 core::PersistencyModel model);

}  // namespace deepmc::crash
