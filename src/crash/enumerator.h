// Crash-state enumeration over a recorded persistence-event log.
//
// At every crash point (the instant before each counted pool event, plus the
// end of the execution) the set of persisted images the hardware may leave
// behind is: the durable baseline — everything already fenced home (or made
// durable by transaction-commit machinery) — plus ANY SUBSET of the in-flight
// units: flush-pending stores that a power failure may or may not have
// drained, and (optionally) dirty stores the cache may have evicted on its
// own (§1's "unpredictable cache evictions"). That is the Jaaru/WITCHER
// state-space model, specialised to the pool's x86-64 persistence machine.
//
// Two granularities:
//
//  * kStoreRange — in-flight units are the recorded stores themselves, and a
//    flush stages exactly the byte range it names. This is the *model
//    semantics* view the warning validator needs: two fields that happen to
//    share a cacheline stay independent, exactly as the persistency model
//    (not one particular cache geometry) treats them.
//  * kCacheline — in-flight units are whole 64-byte lines with
//    snapshot-at-flush content, bit-for-bit the pool's own staging rules.
//    The empty subset at crash point n reproduces the linear
//    inject_fault_after(n) sweep image, which is how the two subsystems are
//    cross-checked.
//
// Pruning keeps the walk polynomial on realistic logs:
//  * commit-point pruning — a crash point whose in-flight set and durable
//    image both match the previous enumerated point contributes nothing new
//    and is skipped;
//  * subset capping — beyond max_subset_bits pending units, only the
//    boundary family (empty, full, singletons, leave-one-outs) is
//    materialised — every single-unit effect is still witnessed;
//  * per-point image dedup — subsets that collapse to the same bytes (e.g.
//    overwritten stores) are visited once.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <vector>

#include "core/model.h"
#include "crash/event_log.h"
#include "support/budget.h"

namespace deepmc::crash {

inline constexpr size_t kNoEvent = SIZE_MAX;

// ir::RegionKind values, mirrored to keep this library IR-independent.
inline constexpr uint8_t kRegionTx = 0;
inline constexpr uint8_t kRegionEpoch = 1;
inline constexpr uint8_t kRegionStrand = 2;

enum class Granularity : uint8_t { kStoreRange, kCacheline };

/// One reachable persisted image. `point` is a crash position into the
/// event log: the image reflects events [0, point) only.
struct CrashImage {
  size_t point = 0;
  std::map<uint64_t, std::vector<uint8_t>> lines;  ///< line -> 64B content
  uint64_t digest = 0;
};

/// FNV-1a over (line index, content) pairs — the deterministic identity of
/// an image.
uint64_t digest_lines(const std::map<uint64_t, std::vector<uint8_t>>& lines);

/// A store's durability lifecycle at store-range granularity.
struct StoreUnit {
  size_t event = kNoEvent;  ///< creating store event index
  uint64_t off = 0, size = 0;
  SourceLoc loc;
  uint64_t alloc_base = 0;
  int region = -1;           ///< innermost open region at creation
  bool logged = false;       ///< covered by an active tx.add range
  size_t staged_at = kNoEvent;      ///< flush event index (kNoEvent = never)
  SourceLoc staged_loc;             ///< that flush's source location
  size_t durable_at = kNoEvent;     ///< fence or tx-commit event index
  size_t overwritten_at = kNoEvent; ///< fully covered by a later store

  [[nodiscard]] bool created_by(size_t point) const { return event < point; }
  [[nodiscard]] bool staged_by(size_t point) const {
    return staged_at < point;
  }
  [[nodiscard]] bool durable_by(size_t point) const {
    return durable_at < point;
  }
  /// Dirty = created, never flushed home nor made durable yet.
  [[nodiscard]] bool dirty_at(size_t point) const {
    return created_by(point) && !staged_by(point) && !durable_by(point);
  }
  /// Flush-pending = flushed but the sealing fence has not run yet.
  [[nodiscard]] bool pending_at(size_t point) const {
    return staged_by(point) && !durable_by(point);
  }
};

struct RegionInfo {
  uint8_t kind = kRegionTx;
  int parent = -1;
  size_t depth = 0;  ///< nesting depth at begin (0 = outermost)
  size_t begin_event = kNoEvent, end_event = kNoEvent;
  SourceLoc begin_loc, end_loc;
  size_t tx_adds = 0;  ///< tx.add hints logged directly in this region
};

/// Replays an EventLog once at store-range granularity and exposes the
/// derived timelines: store units with their staging/durability lifecycle,
/// the region tree, and fence positions. The trace oracle and the
/// enumerator both build on this.
class StoreReplay {
 public:
  explicit StoreReplay(const EventLog& log);

  [[nodiscard]] const EventLog& log() const { return *log_; }
  [[nodiscard]] const std::vector<StoreUnit>& units() const { return units_; }
  [[nodiscard]] const std::vector<RegionInfo>& regions() const {
    return regions_;
  }
  /// Event indices of fences, in order.
  [[nodiscard]] const std::vector<size_t>& fences() const { return fences_; }

  /// True when `region` is `r` or nested (transitively) inside `r`.
  [[nodiscard]] bool region_within(int region, int r) const;

  /// The smallest valid crash position p with lo < p <= hi — i.e. the
  /// prefix [0, p) contains event `lo`. Valid positions sit before counted
  /// events or at the log end. Returns kNoEvent if none exists.
  [[nodiscard]] size_t crash_point_after(size_t lo, size_t hi) const;

  /// The image at crash position `point` made of the durable baseline plus
  /// the units in `extra` (applied in event order).
  [[nodiscard]] CrashImage image_at(size_t point,
                                    const std::vector<size_t>& extra) const;

  /// Write unit `unit`'s payload into `lines` (domain = touched lines).
  void apply_unit(std::map<uint64_t, std::vector<uint8_t>>& lines,
                  size_t unit) const;

  /// Unit indices pending (flush-unfenced) / dirty at `point`, ascending.
  [[nodiscard]] std::vector<size_t> pending_units(size_t point) const;
  [[nodiscard]] std::vector<size_t> dirty_units(size_t point) const;

 private:
  const EventLog* log_;
  std::vector<StoreUnit> units_;
  std::vector<RegionInfo> regions_;
  std::vector<size_t> fences_;
};

class Enumerator {
 public:
  struct Options {
    core::PersistencyModel model = core::PersistencyModel::kStrict;
    Granularity granularity = Granularity::kStoreRange;
    /// Also treat dirty (never-flushed) stores as in-flight units the cache
    /// may have evicted. The warning validator wants this on; the
    /// fault-sweep cross-check runs with it off (the sweep's worst-case
    /// crash never evicts).
    bool include_dirty = true;
    /// Beyond this many pending units per point, enumerate the boundary
    /// family instead of all 2^k subsets.
    size_t max_subset_bits = 10;
    /// Optional per-enumeration image meter (owned by the caller, must
    /// outlive enumerate()). Charged once per materialised subset;
    /// enumerate() throws support::BudgetExceeded on exhaustion. One
    /// enumeration = one root's event log, so one meter per call is
    /// deterministic at any --jobs.
    support::Budget* image_budget = nullptr;
  };

  struct Stats {
    uint64_t crash_points = 0;      ///< total crash positions in the log
    uint64_t points_enumerated = 0; ///< survived commit-point pruning
    uint64_t points_pruned = 0;
    uint64_t images = 0;            ///< distinct images visited
    uint64_t duplicate_subsets = 0; ///< subsets collapsing to a seen image
    uint64_t capped_points = 0;     ///< points hit by the subset cap
    double subset_space = 0;        ///< sum over points of 2^pending
    double subsets_materialized = 0;

    /// Fraction of the reachable (point, subset) space never materialised.
    [[nodiscard]] double pruning_ratio() const {
      if (subset_space <= 0) return 0.0;
      return 1.0 - subsets_materialized / subset_space;
    }
    void merge(const Stats& o);
  };

  using Visitor = std::function<void(const CrashImage&)>;

  Enumerator(const EventLog& log, Options opts);

  /// Walk every crash point and visit each distinct reachable image.
  /// Deterministic: points ascending, subsets in mask order.
  Stats enumerate(const Visitor& visit) const;

  /// Cachelines ever touched by the log (the image domain).
  [[nodiscard]] std::vector<uint64_t> touched_lines() const;

 private:
  Stats enumerate_store_range(const Visitor& visit) const;
  Stats enumerate_cacheline(const Visitor& visit) const;

  const EventLog* log_;
  Options opts_;
};

}  // namespace deepmc::crash
