#include "crash/enumerator.h"

#include <algorithm>
#include <cmath>
#include <set>

#include "obs/metrics.h"
#include "support/faultpoint.h"

namespace deepmc::crash {

namespace {

// The log is a deterministic record of one interpreted execution, so the
// distribution of in-flight units per crash point is stable.

obs::Counter& enumerations() {
  static obs::Counter c = obs::registry().counter(
      "crash.enumerations_total", obs::Volatility::kStable,
      "Enumerator::enumerate invocations");
  return c;
}

obs::Histogram& pending_units_per_point() {
  static obs::Histogram h = obs::registry().histogram(
      "crash.pending_units_per_point", obs::Volatility::kStable,
      "in-flight persistence units per crash point", {1, 2, 4, 8, 16, 32});
  return h;
}

constexpr uint64_t kFnvOffset = 1469598103934665603ull;
constexpr uint64_t kFnvPrime = 1099511628211ull;

uint64_t fnv_mix(uint64_t h, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (i * 8)) & 0xff;
    h *= kFnvPrime;
  }
  return h;
}

uint64_t fnv_bytes(uint64_t h, const uint8_t* p, size_t n) {
  for (size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= kFnvPrime;
  }
  return h;
}

}  // namespace

uint64_t digest_lines(const std::map<uint64_t, std::vector<uint8_t>>& lines) {
  uint64_t h = kFnvOffset;
  for (const auto& [line, bytes] : lines) {
    h = fnv_mix(h, line);
    h = fnv_bytes(h, bytes.data(), bytes.size());
  }
  return h;
}

StoreReplay::StoreReplay(const EventLog& log) : log_(&log) {
  struct AddRange {
    int region;
    uint64_t off, size;
  };
  std::vector<int> open;
  std::vector<AddRange> adds;

  for (size_t i = 0; i < log.events.size(); ++i) {
    const Event& e = log.events[i];
    switch (e.kind) {
      case EventKind::kRegionBegin: {
        RegionInfo r;
        r.kind = e.region_kind;
        r.parent = open.empty() ? -1 : open.back();
        r.depth = open.size();
        r.begin_event = i;
        r.begin_loc = e.loc;
        open.push_back(static_cast<int>(regions_.size()));
        regions_.push_back(r);
        break;
      }
      case EventKind::kRegionEnd: {
        if (open.empty()) break;
        const int r = open.back();
        open.pop_back();
        RegionInfo& ri = regions_[static_cast<size_t>(r)];
        ri.end_event = i;
        ri.end_loc = e.loc;
        if (ri.kind == kRegionTx) {
          // Transaction commit machinery drains the logged working set: a
          // logged store inside the region is durable at commit even when
          // the program never fenced it itself.
          for (StoreUnit& u : units_) {
            if (u.logged && u.durable_at == kNoEvent &&
                u.event > ri.begin_event && u.event < i &&
                region_within(u.region, r))
              u.durable_at = i;
          }
        }
        adds.erase(std::remove_if(
                       adds.begin(), adds.end(),
                       [r](const AddRange& a) { return a.region == r; }),
                   adds.end());
        break;
      }
      case EventKind::kTxAdd: {
        const int r = open.empty() ? -1 : open.back();
        adds.push_back(AddRange{r, e.off, e.size});
        if (r >= 0) ++regions_[static_cast<size_t>(r)].tx_adds;
        break;
      }
      case EventKind::kStore: {
        StoreUnit u;
        u.event = i;
        u.off = e.off;
        u.size = e.size;
        u.loc = e.loc;
        u.alloc_base = e.alloc_base;
        u.region = open.empty() ? -1 : open.back();
        for (const AddRange& a : adds) {
          if (e.off >= a.off && e.off + e.size <= a.off + a.size) {
            u.logged = true;
            break;
          }
        }
        for (StoreUnit& prev : units_) {
          if (prev.overwritten_at == kNoEvent && prev.off >= e.off &&
              prev.off + prev.size <= e.off + e.size)
            prev.overwritten_at = i;
        }
        units_.push_back(std::move(u));
        break;
      }
      case EventKind::kFlush: {
        for (StoreUnit& u : units_) {
          if (u.staged_at == kNoEvent && u.durable_at == kNoEvent &&
              u.off < e.off + e.size && e.off < u.off + u.size) {
            u.staged_at = i;
            u.staged_loc = e.loc;
          }
        }
        break;
      }
      case EventKind::kFence: {
        fences_.push_back(i);
        for (StoreUnit& u : units_) {
          if (u.staged_at != kNoEvent && u.durable_at == kNoEvent)
            u.durable_at = i;
        }
        break;
      }
    }
  }
}

bool StoreReplay::region_within(int region, int r) const {
  while (region >= 0) {
    if (region == r) return true;
    region = regions_[static_cast<size_t>(region)].parent;
  }
  return false;
}

size_t StoreReplay::crash_point_after(size_t lo, size_t hi) const {
  const size_t n = log_->events.size();
  for (size_t p = lo + 1; p <= hi && p <= n; ++p) {
    if (p == n || log_->events[p].counted) return p;
  }
  return kNoEvent;
}

void StoreReplay::apply_unit(std::map<uint64_t, std::vector<uint8_t>>& lines,
                             size_t unit) const {
  const StoreUnit& u = units_[unit];
  const Event& e = log_->events[u.event];
  for (uint64_t i = 0; i < u.size; ++i) {
    const uint64_t line = pmem::line_of(u.off + i);
    auto it = lines.find(line);
    if (it == lines.end()) continue;
    it->second[(u.off + i) % pmem::kCachelineBytes] = e.bytes[i];
  }
}

CrashImage StoreReplay::image_at(size_t point,
                                 const std::vector<size_t>& extra) const {
  CrashImage img;
  img.point = point;
  for (const auto& [line, base] : log_->line_bases)
    img.lines.emplace(line, std::vector<uint8_t>(base.begin(), base.end()));
  std::vector<size_t> apply;
  for (size_t u = 0; u < units_.size(); ++u)
    if (units_[u].durable_by(point)) apply.push_back(u);
  apply.insert(apply.end(), extra.begin(), extra.end());
  // Units are event-ordered, so index order == program store order.
  std::sort(apply.begin(), apply.end());
  apply.erase(std::unique(apply.begin(), apply.end()), apply.end());
  for (size_t u : apply) apply_unit(img.lines, u);
  img.digest = digest_lines(img.lines);
  return img;
}

std::vector<size_t> StoreReplay::pending_units(size_t point) const {
  std::vector<size_t> out;
  for (size_t u = 0; u < units_.size(); ++u)
    if (units_[u].pending_at(point)) out.push_back(u);
  return out;
}

std::vector<size_t> StoreReplay::dirty_units(size_t point) const {
  std::vector<size_t> out;
  for (size_t u = 0; u < units_.size(); ++u)
    if (units_[u].dirty_at(point)) out.push_back(u);
  return out;
}

void Enumerator::Stats::merge(const Stats& o) {
  crash_points += o.crash_points;
  points_enumerated += o.points_enumerated;
  points_pruned += o.points_pruned;
  images += o.images;
  duplicate_subsets += o.duplicate_subsets;
  capped_points += o.capped_points;
  subset_space += o.subset_space;
  subsets_materialized += o.subsets_materialized;
}

Enumerator::Enumerator(const EventLog& log, Options opts)
    : log_(&log), opts_(opts) {}

Enumerator::Stats Enumerator::enumerate(const Visitor& visit) const {
  if (obs::enabled()) enumerations().inc();
  return opts_.granularity == Granularity::kStoreRange
             ? enumerate_store_range(visit)
             : enumerate_cacheline(visit);
}

std::vector<uint64_t> Enumerator::touched_lines() const {
  std::vector<uint64_t> out;
  out.reserve(log_->line_bases.size());
  for (const auto& [line, base] : log_->line_bases) out.push_back(line);
  return out;
}

Enumerator::Stats Enumerator::enumerate_store_range(
    const Visitor& visit) const {
  Stats st;
  StoreReplay replay(*log_);
  const size_t n = log_->events.size();

  uint64_t prev_sig = 0;
  bool have_prev = false;
  for (size_t point = 0; point <= n; ++point) {
    if (point != n && !log_->events[point].counted) continue;
    ++st.crash_points;

    std::vector<size_t> inflight = replay.pending_units(point);
    if (opts_.include_dirty) {
      std::vector<size_t> dirty = replay.dirty_units(point);
      inflight.insert(inflight.end(), dirty.begin(), dirty.end());
      std::sort(inflight.begin(), inflight.end());
    }
    const CrashImage base = replay.image_at(point, {});

    // Commit-point pruning: same durable image + same in-flight units as
    // the previous crash point means the subset family is identical too.
    // Reachable space at this point (counted whether or not the point is
    // pruned: pruning is exactly the work this ratio credits as saved).
    const size_t k = inflight.size();
    if (obs::enabled()) pending_units_per_point().observe(k);
    st.subset_space +=
        std::ldexp(1.0, static_cast<int>(std::min<size_t>(k, 1000)));

    uint64_t sig = fnv_mix(base.digest, inflight.size());
    for (size_t u : inflight) sig = fnv_mix(sig, u);
    if (have_prev && sig == prev_sig) {
      ++st.points_pruned;
      continue;
    }
    prev_sig = sig;
    have_prev = true;
    ++st.points_enumerated;

    std::set<uint64_t> seen;
    auto emit = [&](const std::vector<size_t>& extra) {
      DEEPMC_FAULTPOINT("enum.image");
      if (opts_.image_budget != nullptr) opts_.image_budget->charge();
      st.subsets_materialized += 1;
      CrashImage img = extra.empty() ? base : replay.image_at(point, extra);
      if (!seen.insert(img.digest).second) {
        ++st.duplicate_subsets;
        return;
      }
      ++st.images;
      visit(img);
    };

    if (k <= opts_.max_subset_bits) {
      for (uint64_t mask = 0; mask < (1ull << k); ++mask) {
        std::vector<size_t> extra;
        for (size_t b = 0; b < k; ++b)
          if (mask & (1ull << b)) extra.push_back(inflight[b]);
        emit(extra);
      }
    } else {
      ++st.capped_points;
      emit({});
      emit(inflight);
      for (size_t b = 0; b < k; ++b) {
        emit({inflight[b]});
        std::vector<size_t> loo;
        loo.reserve(k - 1);
        for (size_t j = 0; j < k; ++j)
          if (j != b) loo.push_back(inflight[j]);
        emit(loo);
      }
    }
  }
  return st;
}

Enumerator::Stats Enumerator::enumerate_cacheline(const Visitor& visit) const {
  Stats st;
  using Line = std::vector<uint8_t>;
  std::map<uint64_t, Line> persisted, data, staged;
  std::set<uint64_t> dirty;
  for (const auto& [line, base] : log_->line_bases) {
    persisted.emplace(line, Line(base.begin(), base.end()));
    data.emplace(line, Line(base.begin(), base.end()));
  }
  const size_t n = log_->events.size();

  uint64_t prev_sig = 0;
  bool have_prev = false;
  auto visit_point = [&](size_t point) {
    ++st.crash_points;
    // A line can be in flight twice: an older flushed snapshot queued for
    // write-back AND a newer dirty copy the cache may evict. Snapshots list
    // first; a selected dirty copy is applied after and wins, mirroring the
    // pool's crash() order.
    std::vector<std::pair<uint64_t, const Line*>> inflight;
    for (const auto& [line, snap] : staged) inflight.emplace_back(line, &snap);
    if (opts_.include_dirty)
      for (uint64_t l : dirty) inflight.emplace_back(l, &data.at(l));

    // Reachable space at this point (counted whether or not the point is
    // pruned: pruning is exactly the work this ratio credits as saved).
    const size_t k = inflight.size();
    if (obs::enabled()) pending_units_per_point().observe(k);
    st.subset_space +=
        std::ldexp(1.0, static_cast<int>(std::min<size_t>(k, 1000)));

    uint64_t sig = fnv_mix(digest_lines(persisted), inflight.size());
    for (const auto& [line, bytes] : inflight)
      sig = fnv_bytes(fnv_mix(sig, line), bytes->data(), bytes->size());
    if (have_prev && sig == prev_sig) {
      ++st.points_pruned;
      return;
    }
    prev_sig = sig;
    have_prev = true;
    ++st.points_enumerated;

    std::set<uint64_t> seen;
    auto emit = [&](const std::vector<size_t>& sel) {
      DEEPMC_FAULTPOINT("enum.image");
      if (opts_.image_budget != nullptr) opts_.image_budget->charge();
      st.subsets_materialized += 1;
      CrashImage img;
      img.point = point;
      img.lines = persisted;
      for (size_t i : sel) img.lines[inflight[i].first] = *inflight[i].second;
      img.digest = digest_lines(img.lines);
      if (!seen.insert(img.digest).second) {
        ++st.duplicate_subsets;
        return;
      }
      ++st.images;
      visit(img);
    };

    if (k <= opts_.max_subset_bits) {
      for (uint64_t mask = 0; mask < (1ull << k); ++mask) {
        std::vector<size_t> sel;
        for (size_t b = 0; b < k; ++b)
          if (mask & (1ull << b)) sel.push_back(b);
        emit(sel);
      }
    } else {
      ++st.capped_points;
      std::vector<size_t> all(k);
      for (size_t b = 0; b < k; ++b) all[b] = b;
      emit({});
      emit(all);
      for (size_t b = 0; b < k; ++b) {
        emit({b});
        std::vector<size_t> loo;
        loo.reserve(k - 1);
        for (size_t j = 0; j < k; ++j)
          if (j != b) loo.push_back(j);
        emit(loo);
      }
    }
  };

  for (size_t p = 0; p <= n; ++p) {
    if (p == n || log_->events[p].counted) visit_point(p);
    if (p == n) break;
    const Event& e = log_->events[p];
    switch (e.kind) {
      case EventKind::kStore: {
        for (uint64_t i = 0; i < e.size; ++i) {
          const uint64_t line = pmem::line_of(e.off + i);
          data.at(line)[(e.off + i) % pmem::kCachelineBytes] = e.bytes[i];
          dirty.insert(line);
        }
        break;
      }
      case EventKind::kFlush: {
        if (e.size == 0) break;
        const uint64_t first = pmem::line_of(e.off);
        const uint64_t last = pmem::line_of(e.off + e.size - 1);
        for (uint64_t l = first; l <= last; ++l) {
          if (dirty.count(l)) {
            staged[l] = data.at(l);
            dirty.erase(l);
          }
        }
        break;
      }
      case EventKind::kFence: {
        for (auto& [l, snap] : staged) persisted[l] = snap;
        staged.clear();
        break;
      }
      default:
        break;
    }
  }
  return st;
}

}  // namespace deepmc::crash
