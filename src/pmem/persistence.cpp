#include "pmem/persistence.h"

#include <algorithm>

namespace deepmc::pmem {

namespace {
// Iterate the lines covering [addr, addr+size).
template <typename Fn>
void for_each_line(uint64_t addr, uint64_t size, Fn&& fn) {
  if (size == 0) return;
  const uint64_t first = line_of(addr);
  const uint64_t last = line_of(addr + size - 1);
  for (uint64_t l = first; l <= last; ++l) fn(l);
}
}  // namespace

void PersistenceTracker::on_store(uint64_t addr, uint64_t size) {
  ++stats_.stores;
  stats_.bytes_stored += size;
  stats_.sim_ns += latency_.store_ns;
  for_each_line(addr, size, [&](uint64_t l) { lines_[l] = LineState::kDirty; });
}

void PersistenceTracker::on_load(uint64_t addr, uint64_t size) {
  (void)addr;
  (void)size;
  ++stats_.loads;
  stats_.sim_ns += latency_.load_ns;
}

void PersistenceTracker::on_flush(uint64_t addr, uint64_t size,
                                  bool* was_redundant) {
  ++stats_.flush_calls;
  bool any_dirty = false;
  for_each_line(addr, size, [&](uint64_t l) {
    ++stats_.flushed_lines;
    auto it = lines_.find(l);
    const LineState st = it == lines_.end() ? LineState::kClean : it->second;
    if (st == LineState::kDirty) {
      any_dirty = true;
      lines_[l] = LineState::kFlushPending;
      ++stats_.media_writes;
      stats_.sim_ns += latency_.flush_line_ns;
    } else {
      // Redundant writeback: the line carries no new data, but the clwb
      // still costs a round-trip (paper §3.3, "redundant write-backs").
      ++stats_.redundant_flushed_lines;
      stats_.sim_ns += latency_.flush_clean_line_ns;
    }
  });
  if (was_redundant) *was_redundant = !any_dirty;
}

void PersistenceTracker::on_fence() {
  ++stats_.fences;
  stats_.sim_ns += latency_.fence_base_ns;
  uint64_t drained = 0;
  for (auto it = lines_.begin(); it != lines_.end();) {
    if (it->second == LineState::kFlushPending) {
      ++drained;
      it = lines_.erase(it);  // back to Clean
    } else {
      ++it;
    }
  }
  stats_.sim_ns += drained * latency_.fence_per_line_ns;
  if (drained == 0) ++stats_.empty_fences;
}

LineState PersistenceTracker::state_at(uint64_t addr) const {
  auto it = lines_.find(line_of(addr));
  return it == lines_.end() ? LineState::kClean : it->second;
}

bool PersistenceTracker::is_persisted(uint64_t addr, uint64_t size) const {
  if (size == 0) return true;
  bool ok = true;
  for_each_line(addr, size, [&](uint64_t l) {
    auto it = lines_.find(l);
    if (it != lines_.end()) ok = false;  // Dirty or FlushPending
  });
  return ok;
}

std::vector<uint64_t> PersistenceTracker::dirty_lines() const {
  std::vector<uint64_t> out;
  for (const auto& [l, st] : lines_)
    if (st == LineState::kDirty) out.push_back(l);
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<uint64_t> PersistenceTracker::pending_lines() const {
  std::vector<uint64_t> out;
  for (const auto& [l, st] : lines_)
    if (st == LineState::kFlushPending) out.push_back(l);
  std::sort(out.begin(), out.end());
  return out;
}

void PersistenceTracker::reset() {
  lines_.clear();
  stats_.reset();
}

}  // namespace deepmc::pmem
