#include "pmem/pool.h"

#include <new>

namespace deepmc::pmem {

namespace {
constexpr uint64_t kMagic = 0xdeedc0dedeedc0deull;

uint64_t round_up_line(uint64_t n) {
  return (n + kCachelineBytes - 1) / kCachelineBytes * kCachelineBytes;
}
}  // namespace

PmPool::PmPool(uint64_t size_bytes, LatencyModel latency)
    : data_(round_up_line(std::max<uint64_t>(size_bytes, 2 * kHeaderBytes)), 0),
      persisted_(data_.size(), 0),
      tracker_(latency),
      bump_(kHeaderBytes) {
  // Header: magic at 0, root offset at 8. Persist it as pool creation does.
  store_val<uint64_t>(0, kMagic);
  store_val<uint64_t>(8, kNullOff);
  persist(0, kHeaderBytes);
  reset_stats();
}

uint64_t PmPool::alloc(uint64_t size) {
  const uint64_t sz = round_up_line(std::max<uint64_t>(size, 1));
  auto fl = free_lists_.find(sz);
  if (fl != free_lists_.end() && !fl->second.empty()) {
    const uint64_t off = fl->second.back();
    fl->second.pop_back();
    allocs_[off] = sz;
    return off;
  }
  if (bump_ + sz > data_.size()) throw std::bad_alloc();
  const uint64_t off = bump_;
  bump_ += sz;
  allocs_[off] = sz;
  return off;
}

void PmPool::free(uint64_t off) {
  auto it = allocs_.find(off);
  if (it == allocs_.end())
    throw std::invalid_argument("PmPool::free: not an allocation");
  free_lists_[it->second].push_back(off);
  allocs_.erase(it);
}

uint64_t PmPool::alloc_size(uint64_t off) const {
  auto it = allocs_.find(off);
  return it == allocs_.end() ? 0 : it->second;
}

uint64_t PmPool::alloc_base(uint64_t off) const {
  auto it = allocs_.upper_bound(off);
  if (it == allocs_.begin()) return kNullOff;
  --it;
  if (off < it->first + it->second) return it->first;
  return kNullOff;
}

void PmPool::set_root(uint64_t off) {
  store_val<uint64_t>(8, off);
  persist(8, sizeof(uint64_t));
}

uint64_t PmPool::root() const { return load_val<uint64_t>(8); }

void PmPool::check_range(uint64_t off, uint64_t size) const {
  if (off + size > data_.size() || off + size < off)
    throw std::out_of_range("PmPool: access beyond pool end");
}

void PmPool::fault_tick() {
  ++event_count_;
  if (!fault_armed_) return;
  if (fault_countdown_ == 0 || --fault_countdown_ == 0) {
    fault_armed_ = false;
    throw PmFault();
  }
}

void PmPool::announce_lines(uint64_t off, uint64_t size) {
  if (!sink_ || size == 0) return;
  const uint64_t first = line_of(off), last = line_of(off + size - 1);
  for (uint64_t l = first; l <= last; ++l) {
    if (sink_seen_lines_.insert(l).second)
      sink_->on_line_base(l, persisted_.data() + l * kCachelineBytes);
  }
}

void PmPool::store(uint64_t off, const void* src, uint64_t size) {
  fault_tick();
  check_range(off, size);
  std::memcpy(data_.data() + off, src, size);
  tracker_.on_store(off, size);
  if (sink_) {
    announce_lines(off, size);
    sink_->on_store(off, src, size, /*counted=*/true);
  }
}

void PmPool::load(uint64_t off, void* dst, uint64_t size) const {
  check_range(off, size);
  std::memcpy(dst, data_.data() + off, size);
  const_cast<PersistenceTracker&>(tracker_).on_load(off, size);
}

void PmPool::snapshot_pending_line(uint64_t line) {
  const uint64_t base = line * kCachelineBytes;
  auto& buf = staged_[line];
  buf.assign(data_.begin() + static_cast<long>(base),
             data_.begin() + static_cast<long>(base + kCachelineBytes));
}

bool PmPool::flush(uint64_t off, uint64_t size) {
  fault_tick();
  if (size == 0) {
    tracker_.on_flush(off, 0);
    return true;
  }
  check_range(off, size);
  // Snapshot dirty lines before the tracker transitions them, so the staged
  // content is what the clwb actually wrote back.
  const uint64_t first = line_of(off), last = line_of(off + size - 1);
  for (uint64_t l = first; l <= last; ++l)
    if (tracker_.state_at(l * kCachelineBytes) == LineState::kDirty)
      snapshot_pending_line(l);
  bool redundant = false;
  tracker_.on_flush(off, size, &redundant);
  if (sink_) {
    announce_lines(off, size);
    sink_->on_flush(off, size);
  }
  return redundant;
}

void PmPool::fence() {
  fault_tick();
  // Everything staged reaches the persistence domain.
  for (auto& [line, bytes] : staged_) {
    std::memcpy(persisted_.data() + line * kCachelineBytes, bytes.data(),
                kCachelineBytes);
  }
  staged_.clear();
  tracker_.on_fence();
  if (sink_) sink_->on_fence();
}

void PmPool::memset_persist(uint64_t off, uint8_t byte, uint64_t size) {
  check_range(off, size);
  std::memset(data_.data() + off, byte, size);
  tracker_.on_store(off, size);
  if (sink_) {
    announce_lines(off, size);
    // The memset does not advance event_count(); recorders that replay the
    // fault-injection sweep need to know this store is "free".
    sink_->on_store(off, data_.data() + off, size, /*counted=*/false);
  }
  persist(off, size);
}

void PmPool::crash(const CrashOptions& opts, Rng* rng) {
  Rng local(42);
  Rng& r = rng ? *rng : local;

  // Flushed-but-unfenced lines may or may not have drained.
  for (auto& [line, bytes] : staged_) {
    if (r.chance(opts.pending_survives)) {
      std::memcpy(persisted_.data() + line * kCachelineBytes, bytes.data(),
                  kCachelineBytes);
    }
  }
  // Dirty lines may have been evicted by the cache.
  if (opts.dirty_evicted > 0.0) {
    for (uint64_t l : tracker_.dirty_lines()) {
      if (r.chance(opts.dirty_evicted)) {
        std::memcpy(persisted_.data() + l * kCachelineBytes,
                    data_.data() + l * kCachelineBytes, kCachelineBytes);
      }
    }
  }
  staged_.clear();
  data_ = persisted_;  // the surviving image is what recovery sees
  // All cache state is gone after power loss.
  PersistenceStats saved = tracker_.stats();
  tracker_.reset();
  tracker_.mutable_stats() = saved;
}

void PmPool::install_image(
    const std::map<uint64_t, std::vector<uint8_t>>& lines) {
  for (const auto& [line, bytes] : lines) {
    const uint64_t base = line * kCachelineBytes;
    check_range(base, kCachelineBytes);
    if (bytes.size() != kCachelineBytes)
      throw std::invalid_argument(
          "PmPool::install_image: image lines must be whole cachelines");
    std::memcpy(persisted_.data() + base, bytes.data(), kCachelineBytes);
  }
  staged_.clear();
  data_ = persisted_;
  PersistenceStats saved = tracker_.stats();
  tracker_.reset();
  tracker_.mutable_stats() = saved;
}

}  // namespace deepmc::pmem
