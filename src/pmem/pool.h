// Emulated persistent-memory pool.
//
// This is the substrate every mini framework (pmdk_mini, pmfs_mini,
// nvmdirect_mini, mnemosyne_mini) and the MIR interpreter run on. It gives:
//
//  * a flat persistent address space addressed by pool offsets,
//  * a 64-byte-aligned allocator (malloc-like functions are where DSA
//    learns that an object is persistent, paper §4.2),
//  * store/load/flush/fence primitives wired into the cacheline
//    persistence state machine (persistence.h),
//  * crash simulation: the pool can "power-fail", after which only data
//    that had reached the persistence domain survives — exactly the
//    experiment that exposes model-violation bugs, and
//  * statistics + a simulated-latency clock that expose performance bugs
//    (redundant flushes, flushes of unmodified data).
//
// Offset 0 is the null offset; a 64-byte pool header holds a magic number
// and the root-object offset, mimicking pmemobj pool layout.
#pragma once

#include <cstdint>
#include <cstring>
#include <map>
#include <stdexcept>
#include <vector>

#include "pmem/persistence.h"
#include "support/rng.h"

namespace deepmc::pmem {

/// Thrown when fault injection triggers: the "process" dies at a
/// persistence event. Callers catch it, call crash(), and run recovery —
/// the crash-at-every-point sweep used by the protocol tests.
class PmFault : public std::runtime_error {
 public:
  PmFault() : std::runtime_error("injected power failure") {}
};

/// What survives a simulated power failure.
struct CrashOptions {
  /// Probability that a flushed-but-not-fenced line made it to the media.
  double pending_survives = 1.0;
  /// Probability that a dirty (never flushed) line was evicted by the cache
  /// on its own and therefore survives. The "unpredictable cache evictions"
  /// of §1 — 0 by default so tests are deterministic.
  double dirty_evicted = 0.0;
};

class PmPool {
 public:
  static constexpr uint64_t kNullOff = 0;
  static constexpr uint64_t kHeaderBytes = kCachelineBytes;

  explicit PmPool(uint64_t size_bytes,
                  LatencyModel latency = LatencyModel::optane_like());

  PmPool(const PmPool&) = delete;
  PmPool& operator=(const PmPool&) = delete;

  [[nodiscard]] uint64_t size() const { return data_.size(); }

  // --- allocation -------------------------------------------------------
  /// Allocate `size` bytes (rounded up to a cacheline). Throws
  /// std::bad_alloc on exhaustion. The allocation itself is volatile state;
  /// callers persist their own metadata.
  uint64_t alloc(uint64_t size);
  void free(uint64_t off);
  /// Size of the allocation at `off` (0 if unknown).
  [[nodiscard]] uint64_t alloc_size(uint64_t off) const;
  /// Base offset of the live allocation containing `off` (kNullOff if none).
  [[nodiscard]] uint64_t alloc_base(uint64_t off) const;
  [[nodiscard]] uint64_t live_allocations() const { return allocs_.size(); }

  // --- root object (as in pmemobj_root) ---------------------------------
  void set_root(uint64_t off);
  [[nodiscard]] uint64_t root() const;

  // --- data path ---------------------------------------------------------
  void store(uint64_t off, const void* src, uint64_t size);
  void load(uint64_t off, void* dst, uint64_t size) const;

  template <typename T>
  void store_val(uint64_t off, const T& v) {
    static_assert(std::is_trivially_copyable_v<T>);
    store(off, &v, sizeof(T));
  }
  template <typename T>
  [[nodiscard]] T load_val(uint64_t off) const {
    static_assert(std::is_trivially_copyable_v<T>);
    T v;
    load(off, &v, sizeof(T));
    return v;
  }

  /// clwb over [off, off+size). Returns true when the flush was redundant
  /// (no covered line carried new data) — ground truth the dynamic checker
  /// uses for runtime redundant-write-back reports.
  bool flush(uint64_t off, uint64_t size);
  /// sfence.
  void fence();
  /// flush + fence, as pmemobj_persist / nvm_persist1 do.
  void persist(uint64_t off, uint64_t size) {
    flush(off, size);
    fence();
  }
  /// memset + persist, as pmemobj_memset_persist does.
  void memset_persist(uint64_t off, uint8_t byte, uint64_t size);

  // --- fault injection -----------------------------------------------------
  /// Arm fault injection: the `n`-th subsequent persistence event (store,
  /// flush, or fence) throws PmFault *before* taking effect. 0 disarms.
  void inject_fault_after(uint64_t n) {
    fault_countdown_ = n;
    fault_armed_ = n > 0;
  }
  [[nodiscard]] bool fault_armed() const { return fault_armed_; }
  /// Persistence events seen since construction (to size sweeps).
  [[nodiscard]] uint64_t event_count() const { return event_count_; }

  // --- crash simulation ---------------------------------------------------
  /// Simulate a power failure: volatile cache contents are lost, the pool
  /// image reverts to what had reached the persistence domain (modulated by
  /// `opts`). Allocator metadata is preserved (it would be rebuilt by
  /// recovery code in a real system; that is orthogonal to the bugs studied).
  void crash(const CrashOptions& opts = {}, Rng* rng = nullptr);

  /// True if [off, off+size) is fully persisted (would survive any crash).
  [[nodiscard]] bool is_persisted(uint64_t off, uint64_t size) const {
    return tracker_.is_persisted(off, size);
  }

  [[nodiscard]] const PersistenceStats& stats() const {
    return tracker_.stats();
  }
  void reset_stats() { tracker_.mutable_stats().reset(); }

  [[nodiscard]] const PersistenceTracker& tracker() const { return tracker_; }

 private:
  void check_range(uint64_t off, uint64_t size) const;
  void snapshot_pending_line(uint64_t line);
  void fault_tick();

  std::vector<uint8_t> data_;       ///< "cache-visible" contents
  std::vector<uint8_t> persisted_;  ///< contents in the persistence domain
  /// Content of lines that were flushed but not yet fenced, snapshotted at
  /// flush time (a later store must not retroactively change what the clwb
  /// wrote back).
  std::map<uint64_t, std::vector<uint8_t>> staged_;
  PersistenceTracker tracker_;

  bool fault_armed_ = false;
  uint64_t fault_countdown_ = 0;
  uint64_t event_count_ = 0;

  uint64_t bump_;  ///< next free offset
  std::map<uint64_t, uint64_t> allocs_;  ///< off -> size (live)
  std::map<uint64_t, std::vector<uint64_t>> free_lists_;  ///< size -> offsets
};

}  // namespace deepmc::pmem
