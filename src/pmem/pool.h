// Emulated persistent-memory pool.
//
// This is the substrate every mini framework (pmdk_mini, pmfs_mini,
// nvmdirect_mini, mnemosyne_mini) and the MIR interpreter run on. It gives:
//
//  * a flat persistent address space addressed by pool offsets,
//  * a 64-byte-aligned allocator (malloc-like functions are where DSA
//    learns that an object is persistent, paper §4.2),
//  * store/load/flush/fence primitives wired into the cacheline
//    persistence state machine (persistence.h),
//  * crash simulation: the pool can "power-fail", after which only data
//    that had reached the persistence domain survives — exactly the
//    experiment that exposes model-violation bugs, and
//  * statistics + a simulated-latency clock that expose performance bugs
//    (redundant flushes, flushes of unmodified data).
//
// Offset 0 is the null offset; a 64-byte pool header holds a magic number
// and the root-object offset, mimicking pmemobj pool layout.
#pragma once

#include <cstdint>
#include <cstring>
#include <map>
#include <set>
#include <stdexcept>
#include <vector>

#include "pmem/persistence.h"
#include "support/rng.h"
#include "support/source_loc.h"

namespace deepmc::pmem {

/// Observer for the pool's persistence-event stream, the feed the crash-state
/// enumerator (src/crash/) records. Two channels share one interface:
///
///  * raw pool events — on_store/on_flush/on_fence fire from inside the data
///    path, *after* fault injection has decided the event happens (an event
///    that throws PmFault is never reported, so a recorded log prefix is
///    exactly what a crash at that point has observed). on_line_base reports
///    the persisted content of a cacheline the first time an event touches it
///    after the sink attaches, giving recorders a baseline image.
///  * annotations — the MIR interpreter forwards source locations, region
///    (tx/epoch/strand) boundaries and tx.add hints so a recorded log can be
///    mapped back to program structure. Framework-level callers that drive
///    the pool directly simply never emit these.
///
/// Default implementations are no-ops; sinks override what they need.
class PmEventSink {
 public:
  virtual ~PmEventSink() = default;

  /// First touch of `line` since the sink attached: `persisted64` points at
  /// the line's current persistence-domain content (kCachelineBytes bytes).
  virtual void on_line_base(uint64_t /*line*/, const uint8_t* /*persisted64*/) {
  }
  /// A store of `size` bytes at `off`. `counted` is false for stores that do
  /// not advance event_count() (the memset half of memset_persist).
  virtual void on_store(uint64_t /*off*/, const void* /*src*/,
                        uint64_t /*size*/, bool /*counted*/) {}
  virtual void on_flush(uint64_t /*off*/, uint64_t /*size*/) {}
  virtual void on_fence() {}

  // --- annotation channel (interpreter-driven) --------------------------
  /// Source location of the next persistence event(s); sticky.
  virtual void on_source_loc(const SourceLoc& /*loc*/) {}
  /// `kind` is the ir::RegionKind value (tx/epoch/strand).
  virtual void on_region_begin(uint8_t /*kind*/, const SourceLoc& /*loc*/) {}
  virtual void on_region_end(uint8_t /*kind*/, const SourceLoc& /*loc*/) {}
  virtual void on_tx_add(uint64_t /*off*/, uint64_t /*size*/,
                         const SourceLoc& /*loc*/) {}
};

/// Thrown when fault injection triggers: the "process" dies at a
/// persistence event. Callers catch it, call crash(), and run recovery —
/// the crash-at-every-point sweep used by the protocol tests.
class PmFault : public std::runtime_error {
 public:
  PmFault() : std::runtime_error("injected power failure") {}
};

/// What survives a simulated power failure.
struct CrashOptions {
  /// Probability that a flushed-but-not-fenced line made it to the media.
  double pending_survives = 1.0;
  /// Probability that a dirty (never flushed) line was evicted by the cache
  /// on its own and therefore survives. The "unpredictable cache evictions"
  /// of §1 — 0 by default so tests are deterministic.
  double dirty_evicted = 0.0;
};

class PmPool {
 public:
  static constexpr uint64_t kNullOff = 0;
  static constexpr uint64_t kHeaderBytes = kCachelineBytes;

  explicit PmPool(uint64_t size_bytes,
                  LatencyModel latency = LatencyModel::optane_like());

  PmPool(const PmPool&) = delete;
  PmPool& operator=(const PmPool&) = delete;

  [[nodiscard]] uint64_t size() const { return data_.size(); }

  // --- allocation -------------------------------------------------------
  /// Allocate `size` bytes (rounded up to a cacheline). Throws
  /// std::bad_alloc on exhaustion. The allocation itself is volatile state;
  /// callers persist their own metadata.
  uint64_t alloc(uint64_t size);
  void free(uint64_t off);
  /// Size of the allocation at `off` (0 if unknown).
  [[nodiscard]] uint64_t alloc_size(uint64_t off) const;
  /// Base offset of the live allocation containing `off` (kNullOff if none).
  [[nodiscard]] uint64_t alloc_base(uint64_t off) const;
  [[nodiscard]] uint64_t live_allocations() const { return allocs_.size(); }

  // --- root object (as in pmemobj_root) ---------------------------------
  void set_root(uint64_t off);
  [[nodiscard]] uint64_t root() const;

  // --- data path ---------------------------------------------------------
  void store(uint64_t off, const void* src, uint64_t size);
  void load(uint64_t off, void* dst, uint64_t size) const;

  template <typename T>
  void store_val(uint64_t off, const T& v) {
    static_assert(std::is_trivially_copyable_v<T>);
    store(off, &v, sizeof(T));
  }
  template <typename T>
  [[nodiscard]] T load_val(uint64_t off) const {
    static_assert(std::is_trivially_copyable_v<T>);
    T v;
    load(off, &v, sizeof(T));
    return v;
  }

  /// clwb over [off, off+size). Returns true when the flush was redundant
  /// (no covered line carried new data) — ground truth the dynamic checker
  /// uses for runtime redundant-write-back reports.
  bool flush(uint64_t off, uint64_t size);
  /// sfence.
  void fence();
  /// flush + fence, as pmemobj_persist / nvm_persist1 do.
  void persist(uint64_t off, uint64_t size) {
    flush(off, size);
    fence();
  }
  /// memset + persist, as pmemobj_memset_persist does.
  void memset_persist(uint64_t off, uint8_t byte, uint64_t size);

  // --- fault injection -----------------------------------------------------
  /// Arm fault injection: the `n`-th subsequent persistence event (store,
  /// flush, or fence) throws PmFault *before* taking effect. 0 disarms.
  void inject_fault_after(uint64_t n) {
    fault_countdown_ = n;
    fault_armed_ = n > 0;
  }
  [[nodiscard]] bool fault_armed() const { return fault_armed_; }
  /// Persistence events seen since construction (to size sweeps).
  [[nodiscard]] uint64_t event_count() const { return event_count_; }

  // --- crash simulation ---------------------------------------------------
  /// Simulate a power failure: volatile cache contents are lost, the pool
  /// image reverts to what had reached the persistence domain (modulated by
  /// `opts`). Allocator metadata is preserved (it would be rebuilt by
  /// recovery code in a real system; that is orthogonal to the bugs studied).
  void crash(const CrashOptions& opts = {}, Rng* rng = nullptr);

  /// Replace the persisted image of the given cachelines (line index ->
  /// kCachelineBytes of content) and make it the visible state, as if the
  /// machine power-failed with exactly those lines durable and rebooted.
  /// Lines not mentioned keep their current persisted content. Cache state
  /// is discarded (like crash()); the allocator survives. The recovery
  /// oracles install each enumerated crash image through this before
  /// replaying the framework's recovery entry point.
  void install_image(const std::map<uint64_t, std::vector<uint8_t>>& lines);

  // --- event sink ---------------------------------------------------------
  /// Attach an observer for subsequent persistence events (nullptr
  /// detaches). The pool does not own the sink; it must outlive the
  /// attachment. Line-base announcements restart on every attach.
  void set_event_sink(PmEventSink* sink) {
    sink_ = sink;
    sink_seen_lines_.clear();
  }
  [[nodiscard]] PmEventSink* event_sink() const { return sink_; }

  /// True if [off, off+size) is fully persisted (would survive any crash).
  [[nodiscard]] bool is_persisted(uint64_t off, uint64_t size) const {
    return tracker_.is_persisted(off, size);
  }

  [[nodiscard]] const PersistenceStats& stats() const {
    return tracker_.stats();
  }
  void reset_stats() { tracker_.mutable_stats().reset(); }

  [[nodiscard]] const PersistenceTracker& tracker() const { return tracker_; }

 private:
  void check_range(uint64_t off, uint64_t size) const;
  void snapshot_pending_line(uint64_t line);
  void fault_tick();
  /// Announce persisted baselines for lines covering [off, off+size) that
  /// the sink has not seen yet.
  void announce_lines(uint64_t off, uint64_t size);

  std::vector<uint8_t> data_;       ///< "cache-visible" contents
  std::vector<uint8_t> persisted_;  ///< contents in the persistence domain
  /// Content of lines that were flushed but not yet fenced, snapshotted at
  /// flush time (a later store must not retroactively change what the clwb
  /// wrote back).
  std::map<uint64_t, std::vector<uint8_t>> staged_;
  PersistenceTracker tracker_;

  bool fault_armed_ = false;
  uint64_t fault_countdown_ = 0;
  uint64_t event_count_ = 0;

  PmEventSink* sink_ = nullptr;
  std::set<uint64_t> sink_seen_lines_;  ///< lines announced via on_line_base

  uint64_t bump_;  ///< next free offset
  std::map<uint64_t, uint64_t> allocs_;  ///< off -> size (live)
  std::map<uint64_t, std::vector<uint64_t>> free_lists_;  ///< size -> offsets
};

}  // namespace deepmc::pmem
