// Latency model for the emulated persistent memory device.
//
// We do not have Optane hardware, so persistence costs are charged in
// simulated nanoseconds using published Optane DC PMM measurements
// (Izraelevitz et al., arXiv:1903.05714, cited by the paper as [21]):
// a clwb of a dirty line plus the media write is ~200-300ns, an sfence
// draining pending lines costs roughly the drain latency of the WPQ, and a
// *redundant* flush still pays the media round-trip, which is where the
// paper's "an additional writeback can introduce extra latency by 2-4x"
// (§3.3) comes from.
#pragma once

#include <cstdint>

namespace deepmc::pmem {

struct LatencyModel {
  uint64_t store_ns = 10;            ///< store hitting the cache
  uint64_t load_ns = 5;              ///< load from cache/PM buffer
  uint64_t flush_line_ns = 250;      ///< clwb + media write for a dirty line
  uint64_t flush_clean_line_ns = 90; ///< clwb of a clean line (no media write
                                     ///< but still a round trip to the WPQ)
  uint64_t fence_base_ns = 60;       ///< sfence with empty write-pending queue
  uint64_t fence_per_line_ns = 50;   ///< drain cost per pending line

  static LatencyModel optane_like() { return LatencyModel{}; }

  /// A zero-cost model for tests that only care about state transitions.
  static LatencyModel zero() { return LatencyModel{0, 0, 0, 0, 0, 0}; }
};

}  // namespace deepmc::pmem
