// Cacheline-granularity persistence state machine.
//
// Models the x86-64 persistence path the paper reasons about (§2.1):
// stores land in volatile cache (Dirty), clwb/clflushopt moves a line into
// the write-pending queue (FlushPending), and sfence guarantees pending
// flushes have reached the persistence domain (Persisted). A crash loses
// Dirty lines, definitely keeps Persisted lines, and *may* keep
// FlushPending lines (flushes can complete before the fence) as well as
// Dirty lines evicted by the cache on its own — the unpredictable evictions
// that make NVM programming hard.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "pmem/latency.h"

namespace deepmc::pmem {

inline constexpr uint64_t kCachelineBytes = 64;

inline uint64_t line_of(uint64_t addr) { return addr / kCachelineBytes; }

enum class LineState : uint8_t {
  kClean,         ///< persisted content == cached content
  kDirty,         ///< modified in cache, not yet flushed
  kFlushPending,  ///< flushed, fence not yet issued
};

/// Counters exposed to benches and to the performance-bug experiments.
struct PersistenceStats {
  uint64_t stores = 0;
  uint64_t bytes_stored = 0;
  uint64_t loads = 0;
  uint64_t flush_calls = 0;
  uint64_t flushed_lines = 0;
  uint64_t redundant_flushed_lines = 0;  ///< flush of a line with no new data
  uint64_t fences = 0;
  uint64_t empty_fences = 0;  ///< fence with no pending lines
  uint64_t media_writes = 0;  ///< lines actually written to the PM media
  uint64_t sim_ns = 0;        ///< accumulated simulated time

  void reset() { *this = PersistenceStats{}; }
};

/// Tracks per-line persistence state over an address range [0, size).
class PersistenceTracker {
 public:
  explicit PersistenceTracker(LatencyModel latency = LatencyModel::optane_like())
      : latency_(latency) {}

  /// Record a store of `size` bytes at `addr`. Marks covered lines Dirty.
  void on_store(uint64_t addr, uint64_t size);

  void on_load(uint64_t addr, uint64_t size);

  /// Record a cacheline writeback (clwb) over [addr, addr+size). If
  /// `was_redundant` is non-null it is set when every covered line was
  /// already clean or pending (no new data written back).
  void on_flush(uint64_t addr, uint64_t size, bool* was_redundant = nullptr);

  /// Record a persist barrier (sfence). Drains all FlushPending lines.
  void on_fence();

  /// State of the line containing `addr`.
  [[nodiscard]] LineState state_at(uint64_t addr) const;

  /// True if every byte of [addr, addr+size) is in the persistence domain
  /// (i.e. Clean — flushed *and* fenced since its last store).
  [[nodiscard]] bool is_persisted(uint64_t addr, uint64_t size) const;

  /// Lines currently Dirty (not flushed since last store).
  [[nodiscard]] std::vector<uint64_t> dirty_lines() const;
  /// Lines flushed but awaiting a fence.
  [[nodiscard]] std::vector<uint64_t> pending_lines() const;

  [[nodiscard]] const PersistenceStats& stats() const { return stats_; }
  PersistenceStats& mutable_stats() { return stats_; }

  [[nodiscard]] const LatencyModel& latency() const { return latency_; }

  void reset();

 private:
  LatencyModel latency_;
  PersistenceStats stats_;
  // Sparse map: absent line == Clean.
  std::unordered_map<uint64_t, LineState> lines_;
};

}  // namespace deepmc::pmem
