// Length-prefixed request/response framing for `deepmc serve`
// (docs/SERVER.md). One frame layout each way, over any byte stream — a
// Unix-domain socket connection or a pipe/file pair in --stdin mode:
//
//   request:   'DMRQ'  u32 version  u32 header_len  u32 body_len
//              header (flat JSON)   body (raw MIR text)
//   response:  'DMRS'  u32 version  u32 status      u32 meta_len
//              u32 body_len         meta (flat JSON)  body (report)
//
// All integers little-endian. status 0 = ok, 1 = error (meta carries
// "error"), 2 = overloaded — a retryable admission-control rejection (the
// daemon's accept queue was full; back off and resend the same request).
// Header/meta are single-level JSON objects of string, number, and
// boolean fields — parsed here with a small scanner, no JSON library.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace deepmc::serve {

inline constexpr uint32_t kProtocolVersion = 1;
inline constexpr size_t kMaxHeaderBytes = 1u << 20;   ///< 1 MiB
inline constexpr size_t kMaxBodyBytes = 256u << 20;   ///< 256 MiB

/// Response status codes. Overloaded responses carry meta
/// {"error": ..., "retryable": true} and an empty body; a well-behaved
/// client backs off (exponential + jitter) and resends the request.
inline constexpr uint32_t kStatusOk = 0;
inline constexpr uint32_t kStatusError = 1;
inline constexpr uint32_t kStatusOverloaded = 2;

struct RequestFrame {
  std::string header;  ///< flat JSON: op/name/model/format/timing/corpus
  std::string body;    ///< MIR text for op "analyze"
};

struct ResponseFrame {
  uint32_t status = 0;  ///< kStatusOk / kStatusError / kStatusOverloaded
  std::string meta;     ///< flat JSON: exit/cache/failed/degraded/warnings
  std::string body;     ///< rendered report
};

/// Blocking, EINTR-safe whole-buffer I/O on a file descriptor. read_exact
/// returns 1 on success, 0 on clean EOF before the first byte, -1 on
/// error or truncation.
int read_exact(int fd, void* buf, size_t n);
bool write_exact(int fd, const void* buf, size_t n);

/// Frame I/O. Readers return 1 ok / 0 clean EOF / -1 malformed or I/O
/// error; writers return false on I/O error.
int read_request(int fd, RequestFrame* out);
/// Timed variant for socket sessions (`timeout_ms` 0 = read_request).
/// Two bounds, both `timeout_ms`: an idle connection must deliver its
/// first byte within it, and once a frame starts, the whole frame must
/// arrive within it — a slowloris drip-feed cannot hold a session slot
/// past one window per frame. Returns 1 / 0 / -1 as above, plus -2 when
/// a bound expires (close the connection, no response owed).
int read_request_timed(int fd, RequestFrame* out, uint64_t timeout_ms);
bool write_request(int fd, const RequestFrame& frame);
int read_response(int fd, ResponseFrame* out);
bool write_response(int fd, const ResponseFrame& frame);

/// Flat-JSON field access for headers/meta. Strings are unescaped;
/// absent keys (or type mismatches) return nullopt.
std::optional<std::string> json_string_field(std::string_view json,
                                             std::string_view key);
std::optional<double> json_num_field(std::string_view json,
                                     std::string_view key);
std::optional<bool> json_bool_field(std::string_view json,
                                    std::string_view key);

}  // namespace deepmc::serve
