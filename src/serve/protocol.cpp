#include "serve/protocol.h"

#include <poll.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>

namespace deepmc::serve {

namespace {

constexpr char kRequestMagic[4] = {'D', 'M', 'R', 'Q'};
constexpr char kResponseMagic[4] = {'D', 'M', 'R', 'S'};

void put_u32(char* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) out[i] = static_cast<char>(v >> (i * 8));
}

uint32_t get_u32(const char* in) {
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i)
    v |= static_cast<uint32_t>(static_cast<unsigned char>(in[i])) << (i * 8);
  return v;
}

int read_payload(int fd, std::string* out, size_t n) {
  out->resize(n);
  if (n == 0) return 1;
  const int rc = read_exact(fd, out->data(), n);
  return rc == 1 ? 1 : -1;  // EOF mid-frame is malformed, not clean
}

using SteadyClock = std::chrono::steady_clock;

/// read_exact against an absolute deadline, using poll() so a stalled
/// peer cannot pin the thread in a blocking read. Returns 1 / 0 / -1 like
/// read_exact, plus -2 when the deadline passes first.
int read_exact_deadline(int fd, void* buf, size_t n,
                        SteadyClock::time_point deadline) {
  char* p = static_cast<char*>(buf);
  size_t got = 0;
  while (got < n) {
    const auto now = SteadyClock::now();
    if (now >= deadline) return -2;
    const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
        deadline - now);
    pollfd pfd{fd, POLLIN, 0};
    const int pr = ::poll(&pfd, 1, static_cast<int>(left.count()) + 1);
    if (pr == 0) return -2;
    if (pr < 0) {
      if (errno == EINTR) continue;
      return -1;
    }
    const ssize_t rc = ::read(fd, p + got, n - got);
    if (rc > 0) {
      got += static_cast<size_t>(rc);
      continue;
    }
    if (rc == 0) return got == 0 ? 0 : -1;
    if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) continue;
    return -1;
  }
  return 1;
}

int read_payload_deadline(int fd, std::string* out, size_t n,
                          SteadyClock::time_point deadline) {
  out->resize(n);
  if (n == 0) return 1;
  const int rc = read_exact_deadline(fd, out->data(), n, deadline);
  if (rc == -2) return -2;
  return rc == 1 ? 1 : -1;
}

}  // namespace

int read_exact(int fd, void* buf, size_t n) {
  char* p = static_cast<char*>(buf);
  size_t got = 0;
  while (got < n) {
    const ssize_t rc = ::read(fd, p + got, n - got);
    if (rc > 0) {
      got += static_cast<size_t>(rc);
      continue;
    }
    if (rc == 0) return got == 0 ? 0 : -1;  // truncation is an error
    if (errno == EINTR) continue;
    return -1;
  }
  return 1;
}

bool write_exact(int fd, const void* buf, size_t n) {
  const char* p = static_cast<const char*>(buf);
  size_t sent = 0;
  while (sent < n) {
    const ssize_t rc = ::write(fd, p + sent, n - sent);
    if (rc > 0) {
      sent += static_cast<size_t>(rc);
      continue;
    }
    if (rc < 0 && errno == EINTR) continue;
    return false;
  }
  return true;
}

int read_request(int fd, RequestFrame* out) {
  char head[16];
  const int rc = read_exact(fd, head, sizeof head);
  if (rc != 1) return rc;
  if (std::memcmp(head, kRequestMagic, 4) != 0) return -1;
  if (get_u32(head + 4) != kProtocolVersion) return -1;
  const uint32_t header_len = get_u32(head + 8);
  const uint32_t body_len = get_u32(head + 12);
  if (header_len > kMaxHeaderBytes || body_len > kMaxBodyBytes) return -1;
  if (read_payload(fd, &out->header, header_len) != 1) return -1;
  if (read_payload(fd, &out->body, body_len) != 1) return -1;
  return 1;
}

int read_request_timed(int fd, RequestFrame* out, uint64_t timeout_ms) {
  if (timeout_ms == 0) return read_request(fd, out);
  const auto window = std::chrono::milliseconds(timeout_ms);
  // Idle bound: the first byte of the next frame must arrive within one
  // window. Once it does, the frame clock restarts — a legitimately idle
  // keep-alive client is not penalized for the wait.
  char head[16];
  auto deadline = SteadyClock::now() + window;
  int rc = read_exact_deadline(fd, head, 1, deadline);
  if (rc != 1) return rc;
  // Stall bound: the rest of the frame shares one fresh window.
  deadline = SteadyClock::now() + window;
  rc = read_exact_deadline(fd, head + 1, sizeof head - 1, deadline);
  if (rc == -2) return -2;
  if (rc != 1) return -1;  // EOF mid-header is truncation
  if (std::memcmp(head, kRequestMagic, 4) != 0) return -1;
  if (get_u32(head + 4) != kProtocolVersion) return -1;
  const uint32_t header_len = get_u32(head + 8);
  const uint32_t body_len = get_u32(head + 12);
  if (header_len > kMaxHeaderBytes || body_len > kMaxBodyBytes) return -1;
  rc = read_payload_deadline(fd, &out->header, header_len, deadline);
  if (rc != 1) return rc;
  rc = read_payload_deadline(fd, &out->body, body_len, deadline);
  if (rc != 1) return rc;
  return 1;
}

bool write_request(int fd, const RequestFrame& frame) {
  char head[16];
  std::memcpy(head, kRequestMagic, 4);
  put_u32(head + 4, kProtocolVersion);
  put_u32(head + 8, static_cast<uint32_t>(frame.header.size()));
  put_u32(head + 12, static_cast<uint32_t>(frame.body.size()));
  return write_exact(fd, head, sizeof head) &&
         write_exact(fd, frame.header.data(), frame.header.size()) &&
         write_exact(fd, frame.body.data(), frame.body.size());
}

int read_response(int fd, ResponseFrame* out) {
  char head[20];
  const int rc = read_exact(fd, head, sizeof head);
  if (rc != 1) return rc;
  if (std::memcmp(head, kResponseMagic, 4) != 0) return -1;
  if (get_u32(head + 4) != kProtocolVersion) return -1;
  out->status = get_u32(head + 8);
  const uint32_t meta_len = get_u32(head + 12);
  const uint32_t body_len = get_u32(head + 16);
  if (meta_len > kMaxHeaderBytes || body_len > kMaxBodyBytes) return -1;
  if (read_payload(fd, &out->meta, meta_len) != 1) return -1;
  if (read_payload(fd, &out->body, body_len) != 1) return -1;
  return 1;
}

bool write_response(int fd, const ResponseFrame& frame) {
  char head[20];
  std::memcpy(head, kResponseMagic, 4);
  put_u32(head + 4, kProtocolVersion);
  put_u32(head + 8, frame.status);
  put_u32(head + 12, static_cast<uint32_t>(frame.meta.size()));
  put_u32(head + 16, static_cast<uint32_t>(frame.body.size()));
  return write_exact(fd, head, sizeof head) &&
         write_exact(fd, frame.meta.data(), frame.meta.size()) &&
         write_exact(fd, frame.body.data(), frame.body.size());
}

namespace {

/// Position just past `"key":` in a flat JSON object, or npos.
size_t value_pos(std::string_view json, std::string_view key) {
  const std::string quoted = "\"" + std::string(key) + "\"";
  size_t pos = 0;
  while ((pos = json.find(quoted, pos)) != std::string_view::npos) {
    size_t p = pos + quoted.size();
    while (p < json.size() && (json[p] == ' ' || json[p] == '\t')) ++p;
    if (p < json.size() && json[p] == ':') {
      ++p;
      while (p < json.size() && (json[p] == ' ' || json[p] == '\t')) ++p;
      return p;
    }
    pos += quoted.size();
  }
  return std::string_view::npos;
}

}  // namespace

std::optional<std::string> json_string_field(std::string_view json,
                                             std::string_view key) {
  size_t p = value_pos(json, key);
  if (p == std::string_view::npos || p >= json.size() || json[p] != '"')
    return std::nullopt;
  ++p;
  std::string out;
  while (p < json.size()) {
    const char c = json[p];
    if (c == '"') return out;
    if (c == '\\') {
      if (p + 1 >= json.size()) return std::nullopt;
      const char e = json[p + 1];
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'n': out += '\n'; break;
        case 't': out += '\t'; break;
        case 'r': out += '\r'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'u': {
          if (p + 5 >= json.size()) return std::nullopt;
          unsigned v = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = json[p + 2 + i];
            v <<= 4;
            if (h >= '0' && h <= '9') v |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') v |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') v |= static_cast<unsigned>(h - 'A' + 10);
            else return std::nullopt;
          }
          // Headers only ever escape control characters; anything wider
          // would need full UTF-16 handling this protocol doesn't use.
          if (v > 0x7f) return std::nullopt;
          out += static_cast<char>(v);
          p += 4;
          break;
        }
        default: return std::nullopt;
      }
      p += 2;
      continue;
    }
    out += c;
    ++p;
  }
  return std::nullopt;  // unterminated
}

std::optional<double> json_num_field(std::string_view json,
                                     std::string_view key) {
  const size_t p = value_pos(json, key);
  if (p == std::string_view::npos || p >= json.size()) return std::nullopt;
  const char c = json[p];
  if (c != '-' && (c < '0' || c > '9')) return std::nullopt;
  size_t end = p;
  while (end < json.size() &&
         (json[end] == '-' || json[end] == '+' || json[end] == '.' ||
          json[end] == 'e' || json[end] == 'E' ||
          (json[end] >= '0' && json[end] <= '9')))
    ++end;
  try {
    return std::stod(std::string(json.substr(p, end - p)));
  } catch (const std::exception&) {
    return std::nullopt;
  }
}

std::optional<bool> json_bool_field(std::string_view json,
                                    std::string_view key) {
  const size_t p = value_pos(json, key);
  if (p == std::string_view::npos) return std::nullopt;
  if (json.substr(p, 4) == "true") return true;
  if (json.substr(p, 5) == "false") return false;
  return std::nullopt;
}

}  // namespace deepmc::serve
