// Hardened client for `deepmc serve`: one connection to a daemon (Unix
// socket path or host:port) with automatic retry of *retryable* failures
// — overloaded (status 2) shed responses, error responses whose meta says
// "retryable": true (injected serve.accept faults), connect failures, and
// mid-request transport drops.
//
// Retry shape: exponential backoff with decorrelated jitter
// (delay = uniform(base, prev * 3), capped), bounded by both an attempt
// count and a wall-clock budget. Every retryable failure closes and
// reconnects — a daemon that shed or dropped us owes nothing to the old
// connection, and a per-session sticky fault trip must not burn the
// whole retry budget on one doomed session.
//
// Idempotency: call() injects a stable "id" header (kept across every
// attempt of one call) when the request has none, so daemon-side
// telemetry can collapse retries of the same logical request.
#pragma once

#include <cstdint>
#include <random>
#include <string>

#include "serve/protocol.h"

namespace deepmc::serve {

/// Connect to `target`: "host:port" when the suffix after the last ':'
/// parses as a port and the prefix is an IPv4 literal, else a Unix-domain
/// socket path. Returns the fd, or -1 with a message in *err.
int connect_target(const std::string& target, std::string* err);

struct RetryPolicy {
  int max_retries = 4;             ///< retries after the first attempt
  uint64_t retry_budget_ms = 2000; ///< wall-clock cap across all retries
  uint64_t base_delay_ms = 5;
  uint64_t max_delay_ms = 250;
};

class ServeClient {
 public:
  explicit ServeClient(std::string target, RetryPolicy policy = {});
  ~ServeClient();

  ServeClient(const ServeClient&) = delete;
  ServeClient& operator=(const ServeClient&) = delete;

  /// One request/response round trip with retries. Returns true with
  /// *resp filled on any non-retryable response (including status 1
  /// errors — the caller decides what a server-side error means); false
  /// with *err set when the retry budget is exhausted or the failure is
  /// not retryable (e.g. the daemon is simply not there and stays gone).
  bool call(const RequestFrame& req, ResponseFrame* resp, std::string* err);

  /// Drop the connection; the next call() reconnects.
  void close();

  struct Stats {
    uint64_t attempts = 0;    ///< round trips tried (first + retries)
    uint64_t retries = 0;     ///< attempts after the first, per call
    uint64_t overloaded = 0;  ///< status-2 shed responses absorbed
    uint64_t reconnects = 0;  ///< connections (re)established
  };
  [[nodiscard]] const Stats& stats() const { return stats_; }

 private:
  bool ensure_connected(std::string* err);
  uint64_t next_delay_ms();

  std::string target_;
  RetryPolicy policy_;
  int fd_ = -1;
  uint64_t prev_delay_ms_ = 0;
  uint64_t id_seq_ = 0;
  std::mt19937_64 rng_;
  Stats stats_;
};

}  // namespace deepmc::serve
