#include "serve/cache.h"

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "serve/hash.h"
#include "support/faultpoint.h"

namespace deepmc::serve {

namespace fs = std::filesystem;

DiskCache::DiskCache(std::string dir, uint32_t version)
    : dir_(std::move(dir)), version_(version) {
  if (dir_.empty()) return;
  std::error_code ec;
  fs::create_directories(dir_, ec);
  if (ec) dir_.clear();  // unusable directory disables the cache
}

std::string DiskCache::path_for(const std::string& key) const {
  return dir_ + "/" + key + ".dmc";
}

std::optional<std::string> DiskCache::get(const std::string& key) {
  if (!enabled()) return std::nullopt;
  try {
    DEEPMC_FAULTPOINT("cache.read");
  } catch (const support::FaultInjected&) {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.read_faults;
    ++stats_.misses;
    return std::nullopt;
  }
  const std::string path = path_for(key);
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.misses;
    return std::nullopt;
  }
  bool corrupt = true;
  std::string payload;
  std::string header;
  if (std::getline(in, header)) {
    std::istringstream hs(header);
    std::string tag;
    std::string hash;
    uint64_t size = 0;
    if (hs >> tag >> hash >> size &&
        tag == "deepmc-cache-v" + std::to_string(version_) &&
        size <= (1ull << 31)) {
      payload.resize(static_cast<size_t>(size));
      in.read(payload.data(), static_cast<std::streamsize>(size));
      if (in.gcount() == static_cast<std::streamsize>(size) &&
          in.get() == std::char_traits<char>::eof() &&
          hash_bytes(payload) == hash)
        corrupt = false;
    }
  }
  if (corrupt) {
    in.close();
    std::error_code ec;
    fs::remove(path, ec);  // don't trip over the same entry again
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.corrupt;
    ++stats_.misses;
    return std::nullopt;
  }
  std::lock_guard<std::mutex> lock(mu_);
  ++stats_.hits;
  return payload;
}

void DiskCache::put(const std::string& key, std::string_view payload) {
  if (!enabled()) return;
  try {
    DEEPMC_FAULTPOINT("cache.write");
  } catch (const support::FaultInjected&) {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.write_faults;
    return;
  }
  uint64_t seq = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    seq = ++tmp_seq_;
  }
  const std::string path = path_for(key);
  const std::string tmp = path + ".tmp" + std::to_string(seq);
  bool ok = false;
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (out) {
      out << "deepmc-cache-v" << version_ << ' ' << hash_bytes(payload) << ' '
          << payload.size() << '\n';
      out.write(payload.data(),
                static_cast<std::streamsize>(payload.size()));
      out.flush();
      ok = out.good();
    }
  }
  if (ok) {
    std::error_code ec;
    fs::rename(tmp, path, ec);
    ok = !ec;
  }
  if (!ok) {
    std::error_code ec;
    fs::remove(tmp, ec);
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.write_errors;
  }
}

DiskCache::Stats DiskCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace deepmc::serve
