#include "serve/cache.h"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <utility>
#include <vector>

#include "obs/flight.h"
#include "serve/hash.h"
#include "support/faultpoint.h"

namespace deepmc::serve {

namespace fs = std::filesystem;

DiskCache::DiskCache(std::string dir, uint32_t version)
    : DiskCache(std::move(dir), version, Limits{}) {}

DiskCache::DiskCache(std::string dir, uint32_t version, Limits limits)
    : dir_(std::move(dir)), version_(version), limits_(limits) {
  if (dir_.empty()) return;
  std::error_code ec;
  fs::create_directories(dir_, ec);
  if (ec) {
    dir_.clear();  // unusable directory disables the cache
    return;
  }
  if (limits_.max_entries > 0 || limits_.max_bytes > 0) {
    std::lock_guard<std::mutex> lock(mu_);
    scan_dir();
    evict_locked();
  }
}

std::string DiskCache::path_for(const std::string& key) const {
  return dir_ + "/" + key + ".dmc";
}

void DiskCache::scan_dir() {
  // Seed the LRU index from what a previous server left behind, oldest
  // mtime = least recent, so restart does not forget the bound.
  std::error_code ec;
  std::vector<std::pair<fs::file_time_type, std::pair<std::string, uint64_t>>>
      found;
  for (fs::directory_iterator it(dir_, ec), end; !ec && it != end;
       it.increment(ec)) {
    const fs::path& p = it->path();
    if (p.extension() != ".dmc") continue;
    std::error_code sec;
    const uint64_t bytes = fs::file_size(p, sec);
    if (sec) continue;
    const fs::file_time_type mtime = fs::last_write_time(p, sec);
    if (sec) continue;
    found.emplace_back(mtime,
                       std::make_pair(p.stem().string(), bytes));
  }
  std::sort(found.begin(), found.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  for (const auto& [mtime, entry] : found)
    index_insert_locked(entry.first, entry.second);
}

void DiskCache::touch_locked(const std::string& key) {
  auto it = index_.find(key);
  if (it == index_.end()) return;
  lru_.splice(lru_.begin(), lru_, it->second.pos);
}

void DiskCache::index_insert_locked(const std::string& key, uint64_t bytes) {
  auto it = index_.find(key);
  if (it != index_.end()) {
    total_bytes_ -= it->second.bytes;
    total_bytes_ += bytes;
    it->second.bytes = bytes;
    lru_.splice(lru_.begin(), lru_, it->second.pos);
    return;
  }
  lru_.push_front(key);
  index_[key] = Entry{lru_.begin(), bytes};
  total_bytes_ += bytes;
}

void DiskCache::index_erase_locked(const std::string& key) {
  auto it = index_.find(key);
  if (it == index_.end()) return;
  total_bytes_ -= it->second.bytes;
  lru_.erase(it->second.pos);
  index_.erase(it);
}

void DiskCache::evict_locked() {
  const bool bound_entries = limits_.max_entries > 0;
  const bool bound_bytes = limits_.max_bytes > 0;
  if (!bound_entries && !bound_bytes) return;
  while (!lru_.empty() &&
         ((bound_entries && index_.size() > limits_.max_entries) ||
          (bound_bytes && total_bytes_ > limits_.max_bytes))) {
    const std::string victim = lru_.back();
    const uint64_t bytes = index_[victim].bytes;
    std::error_code ec;
    fs::remove(path_for(victim), ec);  // best effort; index forgets anyway
    index_erase_locked(victim);
    ++stats_.evictions;
    stats_.evicted_bytes += bytes;
    obs::flight().record(
        "cache.evict",
        obs::flight_join({obs::flight_kv("key", victim),
                          obs::flight_kv_num("bytes",
                                             static_cast<double>(bytes))}));
  }
}

std::optional<std::string> DiskCache::get(const std::string& key) {
  if (!enabled()) return std::nullopt;
  try {
    DEEPMC_FAULTPOINT("cache.read");
  } catch (const support::FaultInjected&) {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.read_faults;
    ++stats_.misses;
    return std::nullopt;
  }
  const std::string path = path_for(key);
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::lock_guard<std::mutex> lock(mu_);
    index_erase_locked(key);  // vanished externally, if we knew it at all
    ++stats_.misses;
    return std::nullopt;
  }
  bool corrupt = true;
  std::string payload;
  std::string header;
  if (std::getline(in, header)) {
    std::istringstream hs(header);
    std::string tag;
    std::string hash;
    uint64_t size = 0;
    if (hs >> tag >> hash >> size &&
        tag == "deepmc-cache-v" + std::to_string(version_) &&
        size <= (1ull << 31)) {
      payload.resize(static_cast<size_t>(size));
      in.read(payload.data(), static_cast<std::streamsize>(size));
      if (in.gcount() == static_cast<std::streamsize>(size) &&
          in.get() == std::char_traits<char>::eof() &&
          hash_bytes(payload) == hash)
        corrupt = false;
    }
  }
  if (corrupt) {
    in.close();
    std::error_code ec;
    fs::remove(path, ec);  // don't trip over the same entry again
    std::lock_guard<std::mutex> lock(mu_);
    index_erase_locked(key);
    ++stats_.corrupt;
    ++stats_.misses;
    return std::nullopt;
  }
  std::lock_guard<std::mutex> lock(mu_);
  touch_locked(key);
  ++stats_.hits;
  return payload;
}

void DiskCache::put(const std::string& key, std::string_view payload) {
  if (!enabled()) return;
  try {
    DEEPMC_FAULTPOINT("cache.write");
  } catch (const support::FaultInjected&) {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.write_faults;
    return;
  }
  uint64_t seq = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    seq = ++tmp_seq_;
  }
  const std::string path = path_for(key);
  const std::string tmp = path + ".tmp" + std::to_string(seq);
  uint64_t entry_bytes = 0;
  bool ok = false;
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (out) {
      std::ostringstream header;
      header << "deepmc-cache-v" << version_ << ' ' << hash_bytes(payload)
             << ' ' << payload.size() << '\n';
      const std::string h = header.str();
      out << h;
      out.write(payload.data(),
                static_cast<std::streamsize>(payload.size()));
      out.flush();
      ok = out.good();
      entry_bytes = h.size() + payload.size();
    }
  }
  if (ok) {
    std::error_code ec;
    fs::rename(tmp, path, ec);
    ok = !ec;
  }
  if (!ok) {
    std::error_code ec;
    fs::remove(tmp, ec);
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.write_errors;
    return;
  }
  std::lock_guard<std::mutex> lock(mu_);
  index_insert_locked(key, entry_bytes);
  evict_locked();
}

DiskCache::Stats DiskCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  Stats s = stats_;
  s.entries = index_.size();
  s.bytes = total_bytes_;
  return s;
}

}  // namespace deepmc::serve
