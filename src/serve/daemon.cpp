#include "serve/daemon.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "obs/flight.h"
#include "obs/metrics.h"
#include "serve/protocol.h"
#include "serve/server.h"
#include "serve/service.h"

namespace deepmc::serve {

namespace {

// Lazily registered, like the serve.* request metrics in service.cpp, so
// binaries that never daemonize keep their metrics goldens unchanged.
obs::Counter& shed_total() {
  static obs::Counter c = obs::registry().counter(
      "serve.shed_total", obs::Volatility::kVolatile,
      "connections rejected with an overloaded response");
  return c;
}
obs::Counter& sessions_total() {
  static obs::Counter c = obs::registry().counter(
      "serve.sessions_total", obs::Volatility::kVolatile,
      "connections served to completion by a session thread");
  return c;
}
obs::Counter& accept_retries_total() {
  static obs::Counter c = obs::registry().counter(
      "serve.accept_retries_total", obs::Volatility::kVolatile,
      "transient accept() failures absorbed with backoff");
  return c;
}
obs::Gauge& inflight_gauge() {
  static obs::Gauge g = obs::registry().gauge(
      "serve.inflight", obs::Volatility::kVolatile,
      "sessions being served right now");
  return g;
}

ResponseFrame overloaded_response() {
  ResponseFrame resp;
  resp.status = kStatusOverloaded;
  resp.meta = "{\"error\": \"overloaded: no session capacity\", "
              "\"retryable\": true}";
  return resp;
}

bool set_nonblock(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  return flags >= 0 && ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

// Signal -> drain plumbing. A handler may only touch lock-free state, so
// it sets a flag and pokes the daemon's wake pipe; run() does the rest.
std::atomic<int> g_signal_wake_fd{-1};
std::atomic<bool> g_signal_drain{false};

extern "C" void on_drain_signal(int) {
  g_signal_drain.store(true, std::memory_order_release);
  const int fd = g_signal_wake_fd.load(std::memory_order_acquire);
  if (fd >= 0) {
    const char b = 1;
    [[maybe_unused]] const ssize_t rc = ::write(fd, &b, 1);
  }
}

}  // namespace

ServeDaemon::ServeDaemon(AnalysisService& service, DaemonOptions opts)
    : service_(service), opts_(opts) {
  if (opts_.max_sessions == 0) opts_.max_sessions = 1;
  if (opts_.accept_queue == 0) opts_.accept_queue = 1;
  int pipefd[2] = {-1, -1};
  if (::pipe(pipefd) == 0) {
    wake_r_ = pipefd[0];
    wake_w_ = pipefd[1];
    set_nonblock(wake_r_);
    set_nonblock(wake_w_);
  }
}

ServeDaemon::~ServeDaemon() {
  for (std::thread& t : workers_)
    if (t.joinable()) t.join();
  for (const int fd : listen_fds_) ::close(fd);
  for (const std::string& path : unix_paths_) ::unlink(path.c_str());
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const int fd : queue_) ::close(fd);
    queue_.clear();
  }
  if (g_signal_wake_fd.load(std::memory_order_acquire) == wake_w_)
    g_signal_wake_fd.store(-1, std::memory_order_release);
  if (wake_r_ >= 0) ::close(wake_r_);
  if (wake_w_ >= 0) ::close(wake_w_);
}

bool ServeDaemon::listen_unix(const std::string& path, std::string* err) {
  sockaddr_un addr{};
  if (path.size() >= sizeof(addr.sun_path)) {
    if (err) *err = "socket path too long: " + path;
    return false;
  }
  ::unlink(path.c_str());
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    if (err) *err = std::string("socket: ") + std::strerror(errno);
    return false;
  }
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) < 0 ||
      ::listen(fd, 64) < 0 || !set_nonblock(fd)) {
    if (err) *err = "bind/listen " + path + ": " + std::strerror(errno);
    ::close(fd);
    return false;
  }
  listen_fds_.push_back(fd);
  unix_paths_.push_back(path);
  std::printf("deepmc-serve: listening on %s\n", path.c_str());
  std::fflush(stdout);
  return true;
}

bool ServeDaemon::listen_tcp(const std::string& spec, std::string* err) {
  std::string host = "127.0.0.1";
  std::string port_str = spec;
  const size_t colon = spec.rfind(':');
  if (colon != std::string::npos) {
    host = spec.substr(0, colon);
    port_str = spec.substr(colon + 1);
    if (host.empty()) host = "127.0.0.1";
  }
  char* end = nullptr;
  const long port = std::strtol(port_str.c_str(), &end, 10);
  if (port_str.empty() || (end && *end != '\0') || port < 0 || port > 65535) {
    if (err) *err = "bad TCP listen spec '" + spec + "' (want host:port)";
    return false;
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    if (err) *err = "bad TCP listen address '" + host + "'";
    return false;
  }
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    if (err) *err = std::string("socket: ") + std::strerror(errno);
    return false;
  }
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) < 0 ||
      ::listen(fd, 64) < 0 || !set_nonblock(fd)) {
    if (err) *err = "bind/listen " + spec + ": " + std::strerror(errno);
    ::close(fd);
    return false;
  }
  sockaddr_in bound{};
  socklen_t blen = sizeof bound;
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &blen) == 0)
    tcp_port_ = ntohs(bound.sin_port);
  listen_fds_.push_back(fd);
  std::printf("deepmc-serve: listening on %s:%u\n", host.c_str(),
              static_cast<unsigned>(tcp_port_));
  std::fflush(stdout);
  return true;
}

void ServeDaemon::arm_signal_drain() {
  g_signal_wake_fd.store(wake_w_, std::memory_order_release);
  std::signal(SIGTERM, on_drain_signal);
  std::signal(SIGINT, on_drain_signal);
}

void ServeDaemon::publish_inflight() {
  size_t n;
  {
    std::lock_guard<std::mutex> lock(mu_);
    n = inflight_;
  }
  inflight_gauge().set(n);
}

void ServeDaemon::worker_loop() {
  while (true) {
    int fd = -1;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [&] { return !queue_.empty() || draining_; });
      if (queue_.empty()) return;  // draining, nothing left to serve
      fd = queue_.front();
      queue_.pop_front();
      active_.insert(fd);
      ++inflight_;
      ++stats_.sessions;
    }
    publish_inflight();
    sessions_total().inc();
    SessionHooks hooks;
    hooks.io_timeout_ms = opts_.io_timeout_ms;
    hooks.default_deadline_ms = opts_.request_timeout_ms;
    const int rc = serve_stream(service_, fd, fd, &hooks);
    {
      std::lock_guard<std::mutex> lock(mu_);
      active_.erase(fd);
      --inflight_;
    }
    publish_inflight();
    ::close(fd);
    if (rc == 1) begin_drain("shutdown");
  }
}

void ServeDaemon::admit_or_shed(int conn) {
  bool shed = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.accepted;
    if (draining_ || queue_.size() >= opts_.accept_queue) {
      shed = true;
      ++stats_.shed;
    } else {
      queue_.push_back(conn);
    }
  }
  if (!shed) {
    cv_.notify_one();
    return;
  }
  // Unsolicited response: the client's read after (or during) its request
  // write sees status 2 and backs off. The frame is tiny, so this write
  // from the accept thread cannot block on a sane socket buffer.
  shed_total().inc();
  if (obs::flight().armed()) obs::flight().record("serve.shed", "");
  write_response(conn, overloaded_response());
  ::close(conn);
}

bool ServeDaemon::handle_accept_errno(int err) {
  switch (err) {
    // Per-connection transients: the connection died between poll and
    // accept, or a signal landed. Nothing is wrong with the listener.
    case EINTR:
    case ECONNABORTED:
    case EAGAIN:
#if EAGAIN != EWOULDBLOCK
    case EWOULDBLOCK:
#endif
      return true;
    // Resource exhaustion (fd or buffer pressure): the listener is fine
    // but accepting now would keep failing. Back off with a capped
    // doubling delay so a storm cannot spin the accept thread, and count
    // every retry so operators can see the pressure.
    case EMFILE:
    case ENFILE:
    case ENOBUFS:
    case ENOMEM: {
      accept_backoff_ms_ =
          accept_backoff_ms_ == 0
              ? 1
              : (accept_backoff_ms_ >= 100 ? 100 : accept_backoff_ms_ * 2);
      accept_retries_total().inc();
      {
        std::lock_guard<std::mutex> lock(mu_);
        ++stats_.accept_retries;
      }
      struct timespec ts {
        static_cast<time_t>(accept_backoff_ms_ / 1000),
        static_cast<long>((accept_backoff_ms_ % 1000) * 1000000)
      };
      ::nanosleep(&ts, nullptr);
      return true;
    }
    default:
      std::fprintf(stderr, "deepmc serve: accept: %s\n", std::strerror(err));
      return false;
  }
}

int ServeDaemon::run() {
  std::signal(SIGPIPE, SIG_IGN);  // a vanished client must not kill us
  workers_.reserve(opts_.max_sessions);
  for (size_t i = 0; i < opts_.max_sessions; ++i)
    workers_.emplace_back([this] { worker_loop(); });

  std::vector<pollfd> pfds;
  pfds.push_back({wake_r_, POLLIN, 0});
  for (const int fd : listen_fds_) pfds.push_back({fd, POLLIN, 0});

  while (true) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (draining_) break;
    }
    for (pollfd& p : pfds) p.revents = 0;
    const int pr = ::poll(pfds.data(), pfds.size(), -1);
    if (pr < 0) {
      if (errno == EINTR) continue;
      std::fprintf(stderr, "deepmc serve: poll: %s\n", std::strerror(errno));
      begin_drain("poll-error");
      {
        std::lock_guard<std::mutex> lock(mu_);
        rc_ = 65;
      }
      break;
    }
    if (pfds[0].revents & POLLIN) {
      char buf[64];
      while (::read(wake_r_, buf, sizeof buf) > 0) {
      }
      if (g_signal_drain.exchange(false, std::memory_order_acq_rel))
        begin_drain("signal");
      continue;  // re-check draining_ at the top
    }
    for (size_t i = 1; i < pfds.size(); ++i) {
      if (!(pfds[i].revents & POLLIN)) continue;
      // Drain this listener's backlog completely: with several clients
      // racing one poll wakeup, stopping at the first accept would leave
      // connections pending until the next event.
      while (true) {
        const int conn = ::accept(pfds[i].fd, nullptr, nullptr);
        if (conn < 0) {
          const int err = errno;
          if (err == EAGAIN || err == EWOULDBLOCK) break;  // backlog empty
          if (!handle_accept_errno(err)) {
            begin_drain("accept-error");
            std::lock_guard<std::mutex> lock(mu_);
            rc_ = 65;
          }
          break;
        }
        accept_backoff_ms_ = 0;
        admit_or_shed(conn);
      }
    }
  }

  for (std::thread& t : workers_) t.join();
  workers_.clear();
  for (const int fd : listen_fds_) ::close(fd);
  listen_fds_.clear();
  for (const std::string& path : unix_paths_) ::unlink(path.c_str());
  unix_paths_.clear();
  inflight_gauge().set(0);
  std::lock_guard<std::mutex> lock(mu_);
  return rc_;
}

void ServeDaemon::begin_drain(const char* reason) {
  std::deque<int> to_shed;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (draining_) return;
    draining_ = true;
    to_shed.swap(queue_);
    stats_.shed += to_shed.size();
    // Half-close live sessions: the blocked (or polling) frame read sees
    // EOF and the session ends cleanly after its in-flight response.
    for (const int fd : active_) ::shutdown(fd, SHUT_RD);
  }
  cv_.notify_all();
  if (obs::flight().armed())
    obs::flight().record("serve.drain", std::string("reason=") + reason);
  for (const int fd : to_shed) {
    shed_total().inc();
    write_response(fd, overloaded_response());
    ::close(fd);
  }
  if (wake_w_ >= 0) {
    const char b = 1;
    [[maybe_unused]] const ssize_t rc = ::write(wake_w_, &b, 1);
  }
}

ServeDaemon::Stats ServeDaemon::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace deepmc::serve
