#include "serve/server.h"

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/model.h"
#include "core/report.h"
#include "corpus/corpus.h"
#include "ir/printer.h"
#include "obs/flight.h"
#include "obs/metrics.h"
#include "obs/tracer.h"
#include "serve/client.h"
#include "serve/daemon.h"
#include "serve/protocol.h"
#include "serve/service.h"
#include "support/faultpoint.h"

namespace deepmc::serve {

namespace {

/// Daemon-assigned request ids ("req-N") for headers without an "id"
/// field. Process-wide so ids stay unique across connections.
std::atomic<uint64_t> g_request_seq{0};

obs::Counter& io_timeouts_total() {
  static obs::Counter c = obs::registry().counter(
      "serve.io_timeouts_total", obs::Volatility::kVolatile,
      "sessions closed because a request frame stalled past the I/O bound");
  return c;
}

/// Retryable errors (injected serve.accept faults, transient conditions)
/// tell the client the *next* attempt may succeed — on a fresh
/// connection, since fault trips are sticky per session.
ResponseFrame error_response(const std::string& message,
                             bool retryable = false) {
  ResponseFrame resp;
  resp.status = kStatusError;
  resp.meta = "{\"error\": " + core::json_quote(message) +
              (retryable ? ", \"retryable\": true}" : "}");
  return resp;
}

std::string analyze_meta(const ServeResult& r, const std::string& rid) {
  std::ostringstream os;
  os << "{\"id\": " << core::json_quote(rid)
     << ", \"exit\": " << r.exit_code
     << ", \"cache\": " << core::json_quote(r.cache)
     << ", \"failed\": " << (r.failed ? "true" : "false")
     << ", \"degraded\": " << (r.degraded ? "true" : "false")
     << ", \"deadline_expired\": " << (r.deadline_expired ? "true" : "false")
     << ", \"warnings\": " << r.warnings << "}";
  return os.str();
}

/// The live-telemetry verbs (docs/SERVER.md "Live telemetry").
///
/// `metrics`: registry snapshot of the running daemon. Body is the
/// deepmc-metrics-v1 JSON (header "format": "json", the default) or the
/// Prometheus text exposition ("prom"). The stable section is a pure
/// function of the requests analyzed so far — byte-identical across
/// --jobs values — while wall_ms carries the daemon uptime; header
/// "volatile": false strips the volatile section server-side.
ResponseFrame handle_metrics(const AnalysisService& service,
                             const RequestFrame& req) {
  const std::string fmt =
      json_string_field(req.header, "format").value_or("json");
  obs::Snapshot snap = obs::registry().snapshot();
  snap.wall_ms = service.uptime_ms();
  ResponseFrame resp;
  if (fmt == "prom" || fmt == "prometheus") {
    std::ostringstream os;
    snap.to_prometheus(os);
    resp.body = os.str();
  } else if (fmt == "json") {
    resp.body = snap.to_json(
        json_bool_field(req.header, "volatile").value_or(true));
  } else {
    return error_response("unknown metrics format '" + fmt + "'");
  }
  resp.meta = "{\"ok\": true}";
  return resp;
}

/// One analyze request: resolve corpus/body input and per-request options
/// from the header, run the service, frame the response.
ResponseFrame handle_analyze(AnalysisService& service, const RequestFrame& req,
                             const std::string& rid,
                             uint64_t default_deadline_ms) {
  RequestOptions ropts;
  ropts.request_id = rid;
  // Effective deadline: the smaller of the daemon's --request-timeout-ms
  // and the client's "deadline_ms" header (0 on either side = defer to
  // the other). The client cannot opt out of the daemon's bound.
  ropts.deadline_ms = default_deadline_ms;
  if (auto d = json_num_field(req.header, "deadline_ms"); d && *d > 0) {
    const auto client_ms = static_cast<uint64_t>(*d);
    ropts.deadline_ms = ropts.deadline_ms == 0
                            ? client_ms
                            : std::min(ropts.deadline_ms, client_ms);
  }
  if (auto model = json_string_field(req.header, "model")) {
    auto parsed = core::parse_model_flag(*model);
    if (!parsed) return error_response("unknown model '" + *model + "'");
    ropts.model = *parsed;
  }
  if (auto format = json_string_field(req.header, "format")) {
    if (*format == "text") ropts.format = core::ReportFormat::kText;
    else if (*format == "json") ropts.format = core::ReportFormat::kJson;
    else return error_response("unknown format '" + *format + "'");
  }
  ropts.include_timing = json_bool_field(req.header, "timing").value_or(false);

  std::string name =
      json_string_field(req.header, "name").value_or("<request>");
  std::string text;
  if (auto corpus_name = json_string_field(req.header, "corpus")) {
    // The server owns the corpus registry; the client just names a module.
    // Framework model is forced exactly like the one-shot CLI does.
    try {
      corpus::CorpusModule cm = corpus::build_module(*corpus_name);
      text = ir::to_string(*cm.module);
      name = *corpus_name;
      ropts.model = corpus::framework_model(cm.framework);
    } catch (const std::exception& e) {
      return error_response(e.what());
    }
  } else {
    text = req.body;
  }

  ServeResult r;
  try {
    r = service.analyze_report(name, text, ropts);
  } catch (const std::exception& e) {
    return error_response(std::string("analysis error: ") + e.what());
  }
  ResponseFrame resp;
  resp.status = 0;
  resp.meta = analyze_meta(r, rid);
  resp.body = std::move(r.body);
  return resp;
}

}  // namespace

int serve_stream(AnalysisService& service, int in_fd, int out_fd,
                 const SessionHooks* hooks) {
  // One fault scope for the whole session: "serve.accept:N" trips on the
  // N-th request of this stream and stays tripped (sticky), while
  // cache.read/cache.write trips are absorbed inside DiskCache.
  support::FaultScope faults;
  support::FaultActivation activation(&faults);
  const uint64_t io_timeout_ms = hooks ? hooks->io_timeout_ms : 0;
  const uint64_t default_deadline_ms = hooks ? hooks->default_deadline_ms : 0;
  while (true) {
    RequestFrame req;
    const int rc = read_request_timed(in_fd, &req, io_timeout_ms);
    if (rc == 0) return 0;  // clean EOF
    if (rc == -2) {
      // Frame-read timeout: the peer went idle mid-frame (slowloris or a
      // stalled client). No response is owed to a request that never
      // finished arriving — count it and release the session slot.
      io_timeouts_total().inc();
      if (obs::flight().armed()) obs::flight().record("serve.io_timeout", "");
      return 0;
    }
    if (rc < 0) {
      // Malformed frame: the stream is unsynchronized, so answer once
      // (best effort) and drop the connection rather than guess.
      write_response(out_fd, error_response("malformed request frame"));
      return 0;
    }
    try {
      DEEPMC_FAULTPOINT("serve.accept");
    } catch (const support::FaultInjected& e) {
      // Retryable: the trip is sticky for *this* session, so a client
      // that reconnects gets a fresh fault scope and a fresh countdown.
      if (!write_response(out_fd, error_response(e.what(), true))) return 0;
      continue;
    }
    const std::string op =
        json_string_field(req.header, "op").value_or("analyze");
    // Request id: honor the client's "id" header, else assign "req-N".
    // It tags the accept span here and every span/flight event the
    // service emits below, and comes back in the analyze meta.
    std::string rid;
    if (auto id = json_string_field(req.header, "id")) {
      rid = *id;
    } else {
      const uint64_t n =
          g_request_seq.fetch_add(1, std::memory_order_relaxed) + 1;
      rid = "req-" + std::to_string(n);
    }
    std::string accept_args = obs::span_arg("op", op);
    {
      const std::string rid_arg = obs::span_arg("req", rid);
      if (!accept_args.empty() && !rid_arg.empty()) accept_args += ", ";
      accept_args += rid_arg;
    }
    obs::Span span("serve.accept", "serve", std::move(accept_args));
    ResponseFrame resp;
    bool shutdown = false;
    if (op == "ping") {
      resp.meta = "{\"pong\": true}";
    } else if (op == "stats") {
      resp.meta = "{\"ok\": true}";
      resp.body = service.stats_json();
    } else if (op == "metrics") {
      resp = handle_metrics(service, req);
    } else if (op == "trace") {
      // Recent span window (Chrome trace_event JSON). Collection stays
      // active; with a ring capacity set the daemon keeps only the
      // newest spans, so this is cheap to poll.
      std::ostringstream os;
      obs::tracer().write(os);
      resp.meta = std::string("{\"active\": ") +
                  (obs::tracer().active() ? "true" : "false") + "}";
      resp.body = os.str();
    } else if (op == "flight") {
      std::ostringstream os;
      obs::flight().dump_jsonl(os);
      resp.meta = std::string("{\"armed\": ") +
                  (obs::flight().armed() ? "true" : "false") + "}";
      resp.body = os.str();
    } else if (op == "shutdown") {
      resp.meta = "{\"shutdown\": true}";
      shutdown = true;
    } else if (op == "analyze") {
      resp = handle_analyze(service, req, rid, default_deadline_ms);
    } else {
      resp = error_response("unknown op '" + op + "'");
    }
    if (!write_response(out_fd, resp)) return 0;
    if (shutdown) return 1;
  }
}

int serve_unix_socket(AnalysisService& service, const std::string& path) {
  ServeDaemon daemon(service, DaemonOptions{});
  std::string err;
  if (!daemon.listen_unix(path, &err)) {
    std::fprintf(stderr, "deepmc serve: %s\n", err.c_str());
    return 65;
  }
  return daemon.run();
}

namespace {

int usage(FILE* out) {
  std::fprintf(
      out,
      "usage: deepmc serve --socket PATH | --listen HOST:PORT | --stdin\n"
      "       deepmc serve --connect TARGET [...]     (client)\n"
      "\n"
      "daemon options:\n"
      "  --socket PATH        listen on a Unix-domain socket\n"
      "  --listen HOST:PORT   also/instead listen on localhost TCP\n"
      "                       (port 0 = ephemeral, printed on startup)\n"
      "  --stdin              serve one framed stream on stdin/stdout\n"
      "  --max-sessions N     concurrent client sessions (default 4)\n"
      "  --accept-queue N     accepted-but-unserved bound; beyond it new\n"
      "                       connections are shed with a retryable\n"
      "                       'overloaded' response (default 16)\n"
      "  --request-timeout-ms N   default per-request deadline; expiry\n"
      "                       degrades that request, not the daemon (0 = off)\n"
      "  --io-timeout-ms N    per-frame read bound; a stalled frame closes\n"
      "                       its session (default 30000, 0 = off)\n"
      "  --cache-dir DIR      persist per-function results under DIR\n"
      "  --cache-version N    override the cache entry format version\n"
      "  --cache-max-entries N  LRU bound on cached entries (0 = unbounded)\n"
      "  --cache-max-bytes N    LRU bound on cached bytes (0 = unbounded)\n"
      "  --jobs N             analysis threads (0 = hardware)\n"
      "  -strict|-epoch|-strand   default persistency model\n"
      "  --field-insensitive  disable DSA field sensitivity\n"
      "  --no-telemetry       disable live metrics + flight recorder\n"
      "  --trace-ring N       trace spans into an N-span ring (DMRQ trace)\n"
      "  --flight-out FILE    dump the flight recorder (JSONL) on exit\n"
      "\n"
      "client options:\n"
      "  --connect TARGET     socket path or HOST:PORT of a daemon\n"
      "  file.mir...          analyze files (framed as requests)\n"
      "  --corpus NAME        analyze a built-in corpus module\n"
      "  --format text|json   response rendering (default json)\n"
      "  --timing             include per-unit elapsed_ms\n"
      "  --deadline-ms N      per-request deadline sent in the header\n"
      "  --max-retries N      retries of retryable failures (default 4)\n"
      "  --retry-budget-ms N  wall-clock cap across retries (default 2000)\n"
      "  -strict|-epoch|-strand   request model override\n"
      "  --ping               round-trip check\n"
      "  --cache-stats        print server cache statistics\n"
      "  --metrics            print a live metrics snapshot (JSON)\n"
      "  --prom               print a live metrics snapshot (Prometheus)\n"
      "  --trace-dump         print the daemon's recent spans (JSON)\n"
      "  --flight-dump        print the daemon's flight recorder (JSONL)\n"
      "  --shutdown           ask the daemon to exit (after other work)\n");
  return out == stderr ? 64 : 0;
}

struct ClientJob {
  bool corpus = false;
  std::string name;  ///< file path or corpus module name
};

std::string analyze_header(const ClientJob& job, const std::string& model,
                           const std::string& format, bool timing,
                           uint64_t deadline_ms) {
  std::ostringstream os;
  os << "{\"op\": \"analyze\"";
  if (job.corpus)
    os << ", \"corpus\": " << core::json_quote(job.name);
  else
    os << ", \"name\": " << core::json_quote(job.name);
  if (!model.empty()) os << ", \"model\": " << core::json_quote(model);
  if (deadline_ms > 0) os << ", \"deadline_ms\": " << deadline_ms;
  os << ", \"format\": " << core::json_quote(format)
     << ", \"timing\": " << (timing ? "true" : "false") << "}";
  return os.str();
}

/// Client-side telemetry verbs, gathered so client_main stays readable.
struct TelemetryFetch {
  bool metrics = false;     ///< DMRQ metrics, JSON body
  bool prom = false;        ///< DMRQ metrics, Prometheus body
  bool trace_dump = false;  ///< DMRQ trace
  bool flight_dump = false; ///< DMRQ flight
  [[nodiscard]] bool any() const {
    return metrics || prom || trace_dump || flight_dump;
  }
};

int client_main(const std::string& target, const std::vector<ClientJob>& jobs,
                const std::string& model, const std::string& format,
                bool timing, uint64_t deadline_ms, const RetryPolicy& policy,
                bool ping, bool cache_stats, const TelemetryFetch& telemetry,
                bool shutdown) {
  // Every round trip goes through the retrying client: overloaded sheds,
  // retryable fault errors, and dropped connections back off (with
  // jitter) and resend on a fresh connection.
  ServeClient client(target, policy);
  bool any_failed = false;
  bool any_degraded = false;
  bool transport_error = false;
  uint64_t warnings = 0;
  ResponseFrame resp;
  std::string call_err;
  auto call = [&](const RequestFrame& req) {
    if (client.call(req, &resp, &call_err)) return true;
    std::fprintf(stderr, "deepmc serve: %s\n", call_err.c_str());
    transport_error = true;
    return false;
  };
  if (ping) {
    RequestFrame req;
    req.header = "{\"op\": \"ping\"}";
    if (call(req) && resp.status == kStatusOk &&
        json_bool_field(resp.meta, "pong").value_or(false)) {
      std::printf("pong\n");
    } else if (!transport_error) {
      std::fprintf(stderr, "deepmc serve: ping failed\n");
      transport_error = true;
    }
  }
  for (const ClientJob& job : jobs) {
    if (transport_error) break;
    RequestFrame req;
    req.header = analyze_header(job, model, format, timing, deadline_ms);
    if (!job.corpus) {
      std::ifstream in(job.name, std::ios::binary);
      if (!in) {
        std::fprintf(stderr, "deepmc serve: cannot read %s\n",
                     job.name.c_str());
        any_failed = true;
        continue;
      }
      std::ostringstream body;
      body << in.rdbuf();
      req.body = body.str();
    }
    if (!call(req)) break;
    if (resp.status != kStatusOk) {
      std::fprintf(stderr, "deepmc serve: %s: %s\n", job.name.c_str(),
                   json_string_field(resp.meta, "error")
                       .value_or("request failed")
                       .c_str());
      any_failed = true;
      continue;
    }
    std::fwrite(resp.body.data(), 1, resp.body.size(), stdout);
    if (json_bool_field(resp.meta, "failed").value_or(false))
      any_failed = true;
    if (json_bool_field(resp.meta, "degraded").value_or(false))
      any_degraded = true;
    warnings += static_cast<uint64_t>(
        json_num_field(resp.meta, "warnings").value_or(0));
  }
  if (cache_stats && !transport_error) {
    RequestFrame req;
    req.header = "{\"op\": \"stats\"}";
    if (call(req) && resp.status == kStatusOk) {
      std::fwrite(resp.body.data(), 1, resp.body.size(), stdout);
      std::printf("\n");
    } else {
      transport_error = true;
    }
  }
  // Telemetry verbs print the raw body: JSON snapshots stay parseable,
  // Prometheus text stays scrapeable, flight JSONL stays line-oriented.
  auto fetch_body = [&](const char* header) {
    if (transport_error) return;
    RequestFrame req;
    req.header = header;
    if (call(req) && resp.status == kStatusOk) {
      std::fwrite(resp.body.data(), 1, resp.body.size(), stdout);
      if (!resp.body.empty() && resp.body.back() != '\n') std::printf("\n");
    } else {
      transport_error = true;
    }
  };
  if (telemetry.metrics) fetch_body("{\"op\": \"metrics\"}");
  if (telemetry.prom) fetch_body("{\"op\": \"metrics\", \"format\": \"prom\"}");
  if (telemetry.trace_dump) fetch_body("{\"op\": \"trace\"}");
  if (telemetry.flight_dump) fetch_body("{\"op\": \"flight\"}");
  if (shutdown && !transport_error) {
    RequestFrame req;
    req.header = "{\"op\": \"shutdown\"}";
    if (!call(req) || resp.status != kStatusOk) transport_error = true;
  }
  std::fflush(stdout);
  if (transport_error) {
    std::fprintf(stderr, "deepmc serve: connection to %s failed\n",
                 target.c_str());
    return 65;
  }
  // Same precedence as the one-shot CLI: failed > degraded > warning count.
  if (any_failed) return 65;
  if (any_degraded) return 66;
  return static_cast<int>(warnings > 63 ? 63 : warnings);
}

}  // namespace

int serve_cli(int argc, char** argv) {
  std::string socket_path;
  std::string listen_spec;
  std::string connect_path;
  bool use_stdin = false;
  ServeOptions sopts;
  DaemonOptions daemon_opts;
  std::string client_model;
  std::string format = "json";
  bool timing = false;
  uint64_t deadline_ms = 0;
  RetryPolicy retry_policy;
  bool ping = false;
  bool cache_stats = false;
  bool shutdown = false;
  bool telemetry_on = true;
  long trace_ring = 0;
  std::string flight_out;
  TelemetryFetch telemetry;
  std::vector<ClientJob> jobs;

  auto need_value = [&](int i) { return i + 1 < argc; };
  for (int i = 0; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") return usage(stdout);
    if (arg == "--socket") {
      if (!need_value(i)) return usage(stderr);
      socket_path = argv[++i];
    } else if (arg == "--listen") {
      if (!need_value(i)) return usage(stderr);
      listen_spec = argv[++i];
    } else if (arg == "--stdin") {
      use_stdin = true;
    } else if (arg == "--connect") {
      if (!need_value(i)) return usage(stderr);
      connect_path = argv[++i];
    } else if (arg == "--max-sessions") {
      if (!need_value(i)) return usage(stderr);
      daemon_opts.max_sessions = static_cast<size_t>(std::atoi(argv[++i]));
    } else if (arg == "--accept-queue") {
      if (!need_value(i)) return usage(stderr);
      daemon_opts.accept_queue = static_cast<size_t>(std::atoi(argv[++i]));
    } else if (arg == "--request-timeout-ms") {
      if (!need_value(i)) return usage(stderr);
      daemon_opts.request_timeout_ms =
          static_cast<uint64_t>(std::atoll(argv[++i]));
    } else if (arg == "--io-timeout-ms") {
      if (!need_value(i)) return usage(stderr);
      daemon_opts.io_timeout_ms = static_cast<uint64_t>(std::atoll(argv[++i]));
    } else if (arg == "--deadline-ms") {
      if (!need_value(i)) return usage(stderr);
      deadline_ms = static_cast<uint64_t>(std::atoll(argv[++i]));
    } else if (arg == "--max-retries") {
      if (!need_value(i)) return usage(stderr);
      retry_policy.max_retries = std::atoi(argv[++i]);
    } else if (arg == "--retry-budget-ms") {
      if (!need_value(i)) return usage(stderr);
      retry_policy.retry_budget_ms =
          static_cast<uint64_t>(std::atoll(argv[++i]));
    } else if (arg == "--cache-dir") {
      if (!need_value(i)) return usage(stderr);
      sopts.cache_dir = argv[++i];
    } else if (arg == "--cache-version") {
      if (!need_value(i)) return usage(stderr);
      sopts.cache_version = static_cast<uint32_t>(std::atoi(argv[++i]));
    } else if (arg == "--cache-max-entries") {
      if (!need_value(i)) return usage(stderr);
      sopts.cache_limits.max_entries =
          static_cast<uint64_t>(std::atoll(argv[++i]));
    } else if (arg == "--cache-max-bytes") {
      if (!need_value(i)) return usage(stderr);
      sopts.cache_limits.max_bytes =
          static_cast<uint64_t>(std::atoll(argv[++i]));
    } else if (arg == "--jobs") {
      if (!need_value(i)) return usage(stderr);
      sopts.driver.jobs = static_cast<size_t>(std::atoi(argv[++i]));
    } else if (arg == "--field-insensitive") {
      sopts.driver.checker.field_sensitive = false;
    } else if (arg == "--format") {
      if (!need_value(i)) return usage(stderr);
      format = argv[++i];
      if (format != "text" && format != "json") return usage(stderr);
    } else if (arg == "--timing") {
      timing = true;
    } else if (arg == "--corpus") {
      if (!need_value(i)) return usage(stderr);
      jobs.push_back({true, argv[++i]});
    } else if (arg == "--ping") {
      ping = true;
    } else if (arg == "--cache-stats") {
      cache_stats = true;
    } else if (arg == "--metrics") {
      telemetry.metrics = true;
    } else if (arg == "--prom") {
      telemetry.prom = true;
    } else if (arg == "--trace-dump") {
      telemetry.trace_dump = true;
    } else if (arg == "--flight-dump") {
      telemetry.flight_dump = true;
    } else if (arg == "--no-telemetry") {
      telemetry_on = false;
    } else if (arg == "--trace-ring") {
      if (!need_value(i)) return usage(stderr);
      trace_ring = std::atol(argv[++i]);
    } else if (arg == "--flight-out") {
      if (!need_value(i)) return usage(stderr);
      flight_out = argv[++i];
    } else if (arg == "--shutdown") {
      shutdown = true;
    } else if (auto model = core::parse_model_flag(arg)) {
      sopts.driver.model = *model;
      client_model = core::model_name(*model);
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "deepmc serve: unknown flag %s\n", arg.c_str());
      return 64;
    } else {
      jobs.push_back({false, arg});
    }
  }

  if (!connect_path.empty()) {
    if (!socket_path.empty() || !listen_spec.empty() || use_stdin)
      return usage(stderr);
    if (jobs.empty() && !ping && !cache_stats && !shutdown && !telemetry.any())
      return usage(stderr);
    return client_main(connect_path, jobs, client_model, format, timing,
                       deadline_ms, retry_policy, ping, cache_stats, telemetry,
                       shutdown);
  }
  // Daemon mode: --stdin alone, or any combination of --socket/--listen.
  const bool have_listener = !socket_path.empty() || !listen_spec.empty();
  if (use_stdin == have_listener) return usage(stderr);  // exactly one mode
  if (!jobs.empty() || ping || cache_stats || shutdown || timing ||
      deadline_ms > 0 || telemetry.any())
    return usage(stderr);  // client-only flags without --connect

  std::string fault_error;
  if (!support::arm_faults_from_env(&fault_error)) {
    std::fprintf(stderr, "deepmc serve: %s\n", fault_error.c_str());
    return 64;
  }
  // Long-lived daemons run with live telemetry by default: metrics and
  // the flight recorder are pure side channels (response bodies stay
  // byte-identical with telemetry on or off), and the metrics/trace/
  // flight verbs read them from a running daemon without a restart.
  // Span tracing stays opt-in (--trace-ring) since every span allocates.
  if (flight_out.empty()) {
    if (const char* env = std::getenv("DEEPMC_FLIGHT_OUT")) flight_out = env;
  }
  if (telemetry_on) obs::set_enabled(true);
  if (telemetry_on || !flight_out.empty()) obs::flight().arm();
  if (trace_ring > 0) {
    obs::tracer().set_ring_capacity(static_cast<size_t>(trace_ring));
    obs::tracer().start();
  }
  AnalysisService service(std::move(sopts));
  int rc = 0;
  if (use_stdin) {
    serve_stream(service, STDIN_FILENO, STDOUT_FILENO);
  } else {
    ServeDaemon daemon(service, daemon_opts);
    std::string err;
    if (!socket_path.empty() && !daemon.listen_unix(socket_path, &err)) {
      std::fprintf(stderr, "deepmc serve: %s\n", err.c_str());
      return 65;
    }
    if (!listen_spec.empty() && !daemon.listen_tcp(listen_spec, &err)) {
      std::fprintf(stderr, "deepmc serve: %s\n", err.c_str());
      return 65;
    }
    daemon.arm_signal_drain();
    rc = daemon.run();
  }
  if (!flight_out.empty() && obs::flight().armed() &&
      !obs::flight().dump_file(flight_out)) {
    std::fprintf(stderr, "deepmc serve: cannot write flight log %s\n",
                 flight_out.c_str());
  }
  return rc;
}

}  // namespace deepmc::serve
