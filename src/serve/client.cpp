#include "serve/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <thread>

namespace deepmc::serve {

namespace {

/// "host:port" with an IPv4-literal host and a numeric port? Everything
/// else is a Unix socket path (paths with colons stay paths unless they
/// fully parse as an address, so /tmp/x:1.sock-style names still work).
bool parse_tcp_target(const std::string& target, sockaddr_in* out) {
  const size_t colon = target.rfind(':');
  if (colon == std::string::npos) return false;
  std::string host = target.substr(0, colon);
  const std::string port_str = target.substr(colon + 1);
  if (host.empty()) host = "127.0.0.1";
  if (port_str.empty()) return false;
  char* end = nullptr;
  const long port = std::strtol(port_str.c_str(), &end, 10);
  if ((end && *end != '\0') || port <= 0 || port > 65535) return false;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) return false;
  *out = addr;
  return true;
}

}  // namespace

int connect_target(const std::string& target, std::string* err) {
  sockaddr_in tcp{};
  if (parse_tcp_target(target, &tcp)) {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) {
      if (err) *err = std::string("socket: ") + std::strerror(errno);
      return -1;
    }
    if (::connect(fd, reinterpret_cast<const sockaddr*>(&tcp), sizeof tcp) <
        0) {
      if (err) *err = "connect " + target + ": " + std::strerror(errno);
      ::close(fd);
      return -1;
    }
    return fd;
  }
  sockaddr_un addr{};
  if (target.size() >= sizeof(addr.sun_path)) {
    if (err) *err = "socket path too long: " + target;
    return -1;
  }
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    if (err) *err = std::string("socket: ") + std::strerror(errno);
    return -1;
  }
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, target.c_str(), target.size() + 1);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) <
      0) {
    if (err) *err = "connect " + target + ": " + std::strerror(errno);
    ::close(fd);
    return -1;
  }
  return fd;
}

ServeClient::ServeClient(std::string target, RetryPolicy policy)
    : target_(std::move(target)),
      policy_(policy),
      rng_(std::random_device{}()) {}

ServeClient::~ServeClient() { close(); }

void ServeClient::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

bool ServeClient::ensure_connected(std::string* err) {
  if (fd_ >= 0) return true;
  fd_ = connect_target(target_, err);
  if (fd_ < 0) return false;
  ++stats_.reconnects;
  return true;
}

uint64_t ServeClient::next_delay_ms() {
  // Decorrelated jitter: uniform over [base, prev*3], capped. Retrying
  // clients in a storm spread out instead of thundering in lockstep.
  const uint64_t lo = policy_.base_delay_ms == 0 ? 1 : policy_.base_delay_ms;
  const uint64_t hi = prev_delay_ms_ < lo ? lo * 3 : prev_delay_ms_ * 3;
  std::uniform_int_distribution<uint64_t> dist(lo, hi < lo ? lo : hi);
  uint64_t d = dist(rng_);
  if (policy_.max_delay_ms > 0 && d > policy_.max_delay_ms)
    d = policy_.max_delay_ms;
  prev_delay_ms_ = d;
  return d;
}

bool ServeClient::call(const RequestFrame& req, ResponseFrame* resp,
                       std::string* err) {
  // Stable id across every attempt of this one call: a header without an
  // "id" gets one injected so daemon-side spans/flight events can
  // collapse retries of the same logical request.
  RequestFrame framed = req;
  if (!json_string_field(framed.header, "id")) {
    const std::string field = "\"id\": \"c-" + std::to_string(::getpid()) +
                              "-" + std::to_string(++id_seq_) + "\"";
    std::string& h = framed.header;
    if (h.empty()) {
      h = "{" + field + "}";
    } else if (h.front() == '{') {
      size_t p = 1;
      while (p < h.size() && (h[p] == ' ' || h[p] == '\t')) ++p;
      const bool empty_obj = p < h.size() && h[p] == '}';
      h.insert(1, empty_obj ? field : field + ", ");
    }
  }

  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(policy_.retry_budget_ms);
  prev_delay_ms_ = 0;
  std::string last_err;
  for (int attempt = 0;; ++attempt) {
    ++stats_.attempts;
    std::string connect_err;
    if (!ensure_connected(&connect_err)) {
      last_err = connect_err;  // daemon may be draining/restarting — retry
    } else if (!write_request(fd_, framed) || read_response(fd_, resp) != 1) {
      last_err = "connection to " + target_ + " dropped mid-request";
    } else if (resp->status == kStatusOverloaded) {
      ++stats_.overloaded;
      last_err = json_string_field(resp->meta, "error").value_or("overloaded");
    } else if (resp->status != kStatusOk &&
               json_bool_field(resp->meta, "retryable").value_or(false)) {
      last_err = json_string_field(resp->meta, "error")
                     .value_or("retryable server error");
    } else {
      return true;
    }
    // Always reconnect on a retryable failure: a shed/dropped connection
    // is dead, and a sticky per-session fault trip (serve.accept:N) must
    // not consume the rest of the budget on one doomed session.
    close();
    if (attempt >= policy_.max_retries) {
      if (err) *err = last_err + " (after " + std::to_string(attempt + 1) +
                      " attempts)";
      return false;
    }
    const uint64_t delay = next_delay_ms();
    if (std::chrono::steady_clock::now() + std::chrono::milliseconds(delay) >=
        deadline) {
      if (err) *err = last_err + " (retry budget exhausted)";
      return false;
    }
    ++stats_.retries;
    std::this_thread::sleep_for(std::chrono::milliseconds(delay));
  }
}

}  // namespace deepmc::serve
