#include "serve/service.h"

#include <optional>
#include <sstream>
#include <utility>

#include "ir/parser.h"
#include "obs/flight.h"
#include "obs/metrics.h"
#include "obs/tracer.h"
#include "serve/fingerprint.h"
#include "serve/wire.h"

namespace deepmc::serve {

namespace {

// Lazily registered so a binary that never serves keeps the default
// metrics exposition (and its goldens) unchanged.
obs::Counter& requests_total() {
  static obs::Counter c = obs::registry().counter(
      "serve.requests_total", obs::Volatility::kStable,
      "analysis requests served");
  return c;
}
obs::Counter& unit_hits_total() {
  static obs::Counter c = obs::registry().counter(
      "serve.cache.unit_hits_total", obs::Volatility::kVolatile,
      "whole-unit cache hits (report replayed without analysis)");
  return c;
}
obs::Counter& unit_misses_total() {
  static obs::Counter c = obs::registry().counter(
      "serve.cache.unit_misses_total", obs::Volatility::kVolatile,
      "whole-unit cache misses");
  return c;
}
obs::Counter& root_hits_total() {
  static obs::Counter c = obs::registry().counter(
      "serve.cache.root_hits_total", obs::Volatility::kVolatile,
      "per-root cache hits seeded into the driver");
  return c;
}
obs::Counter& root_misses_total() {
  static obs::Counter c = obs::registry().counter(
      "serve.cache.root_misses_total", obs::Volatility::kVolatile,
      "per-root cache misses (the dirty cone)");
  return c;
}
obs::Histogram& dirty_cone_hist() {
  static obs::Histogram h = obs::registry().histogram(
      "serve.dirty_cone_roots", obs::Volatility::kVolatile,
      "roots recomputed per planned request",
      {0, 1, 2, 4, 8, 16, 32, 64});
  return h;
}
obs::Histogram& request_us_hist() {
  static obs::Histogram h = obs::registry().histogram(
      "serve.request_us", obs::Volatility::kVolatile,
      "end-to-end analyze request latency", obs::time_buckets_us());
  return h;
}
obs::Counter& deadline_expired_total() {
  static obs::Counter c = obs::registry().counter(
      "serve.deadline_expired_total", obs::Volatility::kVolatile,
      "requests whose wall-clock deadline watchdog fired");
  return c;
}

/// Join two rendered span-arg pairs, either of which may be "" (tracer
/// inactive, or no request id on the wire).
std::string join_args(std::string a, const std::string& b) {
  if (a.empty()) return b;
  if (b.empty()) return a;
  a += ", ";
  a += b;
  return a;
}

/// Options the wire format cannot represent faithfully disable caching
/// for the whole request (dynamic findings, crashsim blocks, dumps,
/// suggestion text, suppression accounting, and budget-degraded rungs all
/// live outside the encoded payload). Wall-clock deadlines (budgets.wall_ms
/// and the per-request deadline_at) stay cache-safe: the watchdog only
/// cancels, so a unit that *finished* is byte-identical to an unbounded
/// run, and cancelled units are never kOk so never stored —
/// options_fingerprint likewise excludes them.
bool cache_safe(const core::DriverOptions& o) {
  return !o.dynamic_run && !o.crashsim && !o.dump_ir && !o.dump_dsg &&
         !o.dump_traces && !o.suggest && o.suppressions.size() == 0 &&
         !o.budgets.trace_steps && !o.budgets.dsa_steps &&
         !o.budgets.enum_images && !o.budgets.interp_steps;
}

int exit_code_for(const core::Report& report) {
  if (report.any_failed()) return 65;
  if (report.any_degraded()) return 66;
  const size_t warnings = report.total_warnings();
  return static_cast<int>(warnings > 63 ? 63 : warnings);
}

std::string render(const core::Report& report, const RequestOptions& req) {
  return req.format == core::ReportFormat::kJson
             ? report.json(req.include_timing)
             : report.text();
}

}  // namespace

AnalysisService::AnalysisService(ServeOptions opts)
    : opts_(std::move(opts)),
      pool_([&] {
        const size_t jobs = opts_.driver.jobs == 0
                                ? support::ThreadPool::default_concurrency()
                                : opts_.driver.jobs;
        return jobs <= 1 ? 0 : jobs;
      }()),
      cache_(opts_.cache_dir, opts_.cache_version, opts_.cache_limits) {}

ServeResult AnalysisService::analyze_report(const std::string& name,
                                            const std::string& text,
                                            const RequestOptions& req) {
  // Every span and flight event of this request carries its id, so a
  // trace dump or post-mortem can be filtered to one request's lifeline:
  // request -> cache.lookup -> plan -> recompute -> reply.
  const std::string rid_arg =
      req.request_id.empty() ? std::string()
                             : obs::span_arg("req", req.request_id);
  obs::Span span("serve.request", "serve",
                 join_args(obs::span_arg("unit", name), rid_arg));
  const auto t0 = std::chrono::steady_clock::now();
  auto finish = [&](const ServeResult& r) {
    request_us_hist().observe(static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - t0)
            .count()));
    if (obs::flight().armed()) {
      // One allocation per event: this runs once per request, including
      // the warm-hit fast path the obs-overhead bench gates.
      std::string detail;
      detail.reserve(48 + req.request_id.size() + name.size() +
                     r.cache.size());
      obs::flight_append_kv(detail, "id", req.request_id);
      obs::flight_append_kv(detail, "unit", name);
      obs::flight_append_kv(detail, "cache", r.cache);
      obs::flight_append_kv_num(detail, "exit", r.exit_code);
      obs::flight().record("serve.request", std::move(detail));
    }
  };
  requests_total().inc();
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.requests;
  }

  core::DriverOptions dopts = opts_.driver;
  if (req.model) dopts.model = *req.model;
  if (req.deadline_ms > 0)
    dopts.deadline_at = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(req.deadline_ms);
  const bool eligible = cache_.enabled() && cache_safe(dopts);
  const std::string options_fp = options_fingerprint(dopts);
  const std::string ukey = unit_key(options_fp, name, text);

  ServeResult res;
  res.cache = eligible ? "cold" : "off";

  // Level 1: whole-unit replay — identical text under identical options
  // skips parse, DSA, and checking entirely.
  if (eligible) {
    std::optional<std::string> payload;
    {
      obs::Span s("serve.cache.lookup", "serve",
                  join_args(obs::span_arg("level", "unit"), rid_arg));
      payload = cache_.get(ukey);
    }
    if (payload) {
      core::UnitReport unit;
      if (decode_unit_report(*payload, &unit)) {
        unit_hits_total().inc();
        {
          std::lock_guard<std::mutex> lock(mu_);
          ++stats_.unit_hits;
        }
        std::vector<core::UnitReport> units;
        units.push_back(std::move(unit));
        const core::Report report = core::Report::from_units(std::move(units));
        res.body = render(report, req);
        res.exit_code = exit_code_for(report);
        res.failed = false;
        res.degraded = false;
        res.warnings = report.total_warnings();
        res.cache = "unit-hit";
        finish(res);
        return res;
      }
    }
    unit_misses_total().inc();
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.unit_misses;
  }

  // Level 2: plan per-root keys from a private parse and seed every clean
  // root. The parse here is for planning only — the driver always builds
  // its own module from the raw text, so a parse failure below simply
  // means "no plan" and the driver reports the error the one-shot way.
  ModulePlan plan;
  bool plan_ok = false;
  if (eligible) {
    obs::Span s("serve.plan", "serve", rid_arg);
    try {
      const std::unique_ptr<ir::Module> module = ir::parse_module(text);
      plan = plan_module(*module, options_fp);
      plan_ok = true;
    } catch (const std::exception&) {
      plan_ok = false;
    }
  }

  std::map<std::string, core::CheckResult> seeded;
  size_t dirty = 0;
  if (plan_ok) {
    for (const RootPlan& root : plan.roots) {
      if (auto payload = cache_.get(root.key)) {
        core::CheckResult result;
        if (decode_check_result(*payload, &result)) {
          seeded.emplace(root.name, std::move(result));
          continue;
        }
      }
      ++dirty;
    }
    root_hits_total().inc(seeded.size());
    root_misses_total().inc(dirty);
    dirty_cone_hist().observe(dirty);
    {
      std::lock_guard<std::mutex> lock(mu_);
      stats_.root_hits += seeded.size();
      stats_.root_misses += dirty;
      stats_.last_dirty_roots = dirty;
    }
    if (!seeded.empty()) res.cache = "warm";
  }

  if (!seeded.empty()) dopts.seeded_roots = &seeded;
  dopts.collect_root_results = plan_ok;
  core::AnalysisDriver driver(dopts);
  std::vector<core::AnalysisUnit> units;
  units.push_back(core::make_source_unit(name, text, req.model));
  core::Report report = [&] {
    obs::Span s("serve.recompute", "serve",
                join_args(obs::span_arg_num("dirty_roots",
                                            static_cast<double>(dirty)),
                          rid_arg));
    return driver.run(units, pool_);
  }();

  const core::UnitReport& u = report.units().front();
  if (plan_ok && !u.failed && u.status == core::UnitStatus::kOk) {
    std::map<std::string, const std::string*> key_of;
    for (const RootPlan& root : plan.roots) key_of[root.name] = &root.key;
    for (const auto& [root_name, result] : u.root_results) {
      auto it = key_of.find(root_name);
      if (it != key_of.end())
        cache_.put(*it->second, encode_check_result(result));
    }
    core::UnitReport to_store = u;
    to_store.root_results.clear();
    to_store.stats.elapsed_ms = 0;
    cache_.put(ukey, encode_unit_report(to_store));
  }

  res.body = render(report, req);
  res.exit_code = exit_code_for(report);
  res.failed = report.any_failed();
  res.degraded = report.any_degraded();
  res.warnings = report.total_warnings();
  for (const core::UnitReport& ur : report.units()) {
    const std::string& reason = ur.failed ? ur.fail_reason : ur.degraded.reason;
    if (reason == "budget-exhausted:wall-clock") res.deadline_expired = true;
  }
  if (res.deadline_expired) deadline_expired_total().inc();
  finish(res);
  return res;
}

double AnalysisService::uptime_ms() const {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start_)
      .count();
}

AnalysisService::Stats AnalysisService::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

std::string AnalysisService::stats_json() const {
  const Stats s = stats();
  const DiskCache::Stats c = cache_.stats();
  std::ostringstream os;
  os << "{\"requests\": " << s.requests
     << ", \"unit_hits\": " << s.unit_hits
     << ", \"unit_misses\": " << s.unit_misses
     << ", \"root_hits\": " << s.root_hits
     << ", \"root_misses\": " << s.root_misses
     << ", \"last_dirty_roots\": " << s.last_dirty_roots
     << ", \"cache_enabled\": " << (cache_.enabled() ? "true" : "false")
     << ", \"disk_hits\": " << c.hits << ", \"disk_misses\": " << c.misses
     << ", \"disk_corrupt\": " << c.corrupt
     << ", \"read_faults\": " << c.read_faults
     << ", \"write_faults\": " << c.write_faults
     << ", \"write_errors\": " << c.write_errors
     << ", \"evictions\": " << c.evictions
     << ", \"evicted_bytes\": " << c.evicted_bytes
     << ", \"entries\": " << c.entries << ", \"bytes\": " << c.bytes << "}";
  return os.str();
}

}  // namespace deepmc::serve
