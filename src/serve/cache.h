// Versioned, hash-validated on-disk cache for the analysis server.
//
// Layout: one file per entry under the cache directory, named by the
// 32-hex content key (src/serve/hash.h). Each file is a one-line header
//
//   deepmc-cache-v<version> <payload-hash-32hex> <payload-size>\n
//
// followed by the raw payload bytes (src/serve/wire.h encoding). The
// header makes every entry self-validating: a version bump, a truncated
// write, or bit rot all read back as a miss, never as wrong results.
//
// Degraded mode, never crash: every failure path — unreadable directory,
// corrupt entry, full disk, or an injected fault at "cache.read" /
// "cache.write" (src/support/faultpoint.h) — degrades to a miss or a
// dropped write and bumps a counter. The server stays up and falls back
// to full recomputation.
//
// Bounded mode: Limits caps the entry count and/or total on-disk bytes.
// An in-memory LRU index (seeded from file mtimes at startup, so bounds
// survive restarts) evicts least-recently-used entries after each store;
// get() refreshes recency. Limits of 0 mean unbounded, the historical
// behavior.
#pragma once

#include <cstdint>
#include <list>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>

namespace deepmc::serve {

class DiskCache {
 public:
  /// Entry-format version written into and required from every header.
  /// Bump when the wire encoding changes; old entries then read as misses.
  static constexpr uint32_t kFormatVersion = 1;

  /// Capacity bounds; 0 = unbounded.
  struct Limits {
    uint64_t max_entries = 0;
    uint64_t max_bytes = 0;  ///< total on-disk entry bytes (header+payload)
  };

  struct Stats {
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t corrupt = 0;       ///< bad header/hash/version (entry removed)
    uint64_t read_faults = 0;   ///< injected "cache.read" trips
    uint64_t write_faults = 0;  ///< injected "cache.write" trips
    uint64_t write_errors = 0;  ///< I/O failures while storing
    uint64_t evictions = 0;     ///< entries removed by the LRU bound
    uint64_t evicted_bytes = 0; ///< on-disk bytes those entries held
    uint64_t entries = 0;       ///< entries currently indexed
    uint64_t bytes = 0;         ///< on-disk bytes currently indexed
  };

  /// An empty `dir` disables the cache: every get misses, every put is a
  /// no-op. `version` overrides the header version (tests use this to
  /// exercise version-mismatch recovery).
  explicit DiskCache(std::string dir, uint32_t version = kFormatVersion);
  /// Bounded variant; see Limits.
  DiskCache(std::string dir, uint32_t version, Limits limits);

  [[nodiscard]] bool enabled() const { return !dir_.empty(); }

  /// Payload for `key`, or nullopt on miss/corruption/fault.
  std::optional<std::string> get(const std::string& key);

  /// Best-effort store; failures are counted, not raised.
  void put(const std::string& key, std::string_view payload);

  [[nodiscard]] Stats stats() const;

 private:
  [[nodiscard]] std::string path_for(const std::string& key) const;
  /// Index maintenance (all under mu_). `touch` moves to most-recent;
  /// `index_insert` (re)binds a key and its size; `index_erase` forgets a
  /// key; `evict_locked` enforces Limits by deleting LRU entry files.
  void touch_locked(const std::string& key);
  void index_insert_locked(const std::string& key, uint64_t bytes);
  void index_erase_locked(const std::string& key);
  void evict_locked();
  void scan_dir();

  struct Entry {
    std::list<std::string>::iterator pos;  ///< position in lru_
    uint64_t bytes = 0;
  };

  std::string dir_;
  uint32_t version_;
  Limits limits_;
  mutable std::mutex mu_;
  Stats stats_;
  uint64_t tmp_seq_ = 0;  ///< suffix for unique temp names (under mu_)
  std::list<std::string> lru_;  ///< front = most recently used
  std::unordered_map<std::string, Entry> index_;
  uint64_t total_bytes_ = 0;
};

}  // namespace deepmc::serve
