#include "serve/fingerprint.h"

#include <algorithm>
#include <map>
#include <set>
#include <sstream>

#include "analysis/callgraph.h"
#include "core/model.h"
#include "ir/printer.h"
#include "ir/type.h"
#include "serve/hash.h"

namespace deepmc::serve {

namespace {

/// True when `f` can carry analysis facts between two callers: any
/// defined function (its body is analyzed), or a declared external with
/// arguments or a return value (DSA links caller memory through them). A
/// void/no-arg external is opaque and couples nothing.
bool is_coupling(const ir::Function& f) {
  if (!f.is_declaration()) return true;
  if (f.arg_count() > 0) return true;
  const ir::Type* ret = f.return_type();
  return ret != nullptr && !ret->is_void();
}

/// Call closure of `root` (root included), over CallGraph edges.
std::set<const ir::Function*> closure_of(const analysis::CallGraph& cg,
                                         const ir::Function* root) {
  std::set<const ir::Function*> seen;
  std::vector<const ir::Function*> stack{root};
  while (!stack.empty()) {
    const ir::Function* f = stack.back();
    stack.pop_back();
    if (!seen.insert(f).second) continue;
    for (const ir::Function* callee : cg.callees(f)) stack.push_back(callee);
  }
  return seen;
}

size_t uf_find(std::vector<size_t>& parent, size_t i) {
  while (parent[i] != i) {
    parent[i] = parent[parent[i]];
    i = parent[i];
  }
  return i;
}

/// Struct layout lines from the printed module. TypeContext keeps structs
/// in a std::map, so the printed order is deterministic; a layout change
/// anywhere invalidates every root key (field offsets feed the checker).
std::string structs_fingerprint(const std::string& printed_module) {
  Hasher h;
  std::istringstream in(printed_module);
  std::string line;
  while (std::getline(in, line))
    if (line.rfind("struct ", 0) == 0) h.field(line);
  return h.hex();
}

}  // namespace

std::string options_fingerprint(const core::DriverOptions& opts) {
  Hasher h;
  h.field("deepmc-options-v1");
  h.field(core::model_name(opts.model));
  h.update_u64(opts.checker.field_sensitive ? 1 : 0);
  h.update_u64(static_cast<uint64_t>(opts.checker.trace.max_loop_visits));
  h.update_u64(static_cast<uint64_t>(opts.checker.trace.max_recursion));
  h.update_u64(opts.checker.trace.max_paths);
  h.update_u64(opts.checker.trace.max_callee_paths);
  h.update_u64(opts.checker.dsa_step_budget);
  h.update_u64(opts.checker.trace_step_budget);
  h.update_u64(opts.suggest ? 1 : 0);
  h.update_u64(opts.max_subset_bits);
  return h.hex();
}

std::string unit_key(const std::string& options_fp, const std::string& name,
                     const std::string& text) {
  return Hasher()
      .field("deepmc-unit-v1")
      .field(options_fp)
      .field(name)
      .field(text)
      .hex();
}

ModulePlan plan_module(const ir::Module& module,
                       const std::string& options_fp) {
  const analysis::CallGraph cg(module);

  // Same root selection as StaticChecker::trace_roots(), module order.
  std::set<const ir::Function*> called;
  for (const auto& f : module.functions())
    for (const ir::Function* callee : cg.callees(f.get()))
      called.insert(callee);
  std::vector<const ir::Function*> roots;
  for (const auto& f : module.functions())
    if (!f->is_declaration() && !called.count(f.get()))
      roots.push_back(f.get());
  if (roots.empty()) {
    for (const auto& f : module.functions())
      if (!f->is_declaration()) roots.push_back(f.get());
  }

  // Union roots that share a coupling function in their closures.
  std::vector<std::set<const ir::Function*>> closures;
  closures.reserve(roots.size());
  for (const ir::Function* root : roots) closures.push_back(closure_of(cg, root));
  std::vector<size_t> parent(roots.size());
  for (size_t i = 0; i < parent.size(); ++i) parent[i] = i;
  std::map<const ir::Function*, size_t> owner;
  for (size_t i = 0; i < roots.size(); ++i) {
    for (const ir::Function* f : closures[i]) {
      if (!is_coupling(*f)) continue;
      auto [it, inserted] = owner.emplace(f, i);
      if (!inserted) {
        const size_t a = uf_find(parent, it->second);
        const size_t b = uf_find(parent, i);
        if (a != b) parent[b] = a;
      }
    }
  }

  // One content hash per group: sorted-by-name texts of every function in
  // the union of the group's closures.
  std::map<size_t, std::set<const ir::Function*>> group_fns;
  for (size_t i = 0; i < roots.size(); ++i) {
    auto& fns = group_fns[uf_find(parent, i)];
    fns.insert(closures[i].begin(), closures[i].end());
  }
  const std::string printed = ir::to_string(module);
  const std::string structs_fp = structs_fingerprint(printed);
  std::map<size_t, std::string> group_hash;
  for (const auto& [rep, fns] : group_fns) {
    std::vector<const ir::Function*> sorted(fns.begin(), fns.end());
    std::sort(sorted.begin(), sorted.end(),
              [](const ir::Function* a, const ir::Function* b) {
                return a->name() < b->name();
              });
    Hasher h;
    h.field("deepmc-group-v1");
    for (const ir::Function* f : sorted) {
      h.field(f->name());
      std::ostringstream os;
      ir::print_function(*f, os);
      h.field(os.str());
    }
    group_hash[rep] = h.hex();
  }

  ModulePlan plan;
  plan.groups = group_fns.size();
  plan.roots.reserve(roots.size());
  for (size_t i = 0; i < roots.size(); ++i) {
    const std::string& gh = group_hash[uf_find(parent, i)];
    plan.roots.push_back({roots[i]->name(),
                          Hasher()
                              .field("deepmc-root-v1")
                              .field(options_fp)
                              .field(structs_fp)
                              .field(gh)
                              .field(roots[i]->name())
                              .hex()});
  }
  return plan;
}

}  // namespace deepmc::serve
