// The analysis service behind `deepmc serve`: one long-lived object that
// owns the warm thread pool and the on-disk cache, shared by every
// request on every connection.
//
// Byte-identity contract: a response body is identical to what a fresh
// one-shot `deepmc` run over the same input and options prints (modulo
// elapsed_ms, which the server omits by default). Cached unit replays go
// through Report::from_units into the exact print paths a fresh run
// uses; cached per-root results are merged by the driver in
// trace_roots() order, exactly where a fresh check_root result would be.
//
// Cache safety: results are only cached/replayed for configurations the
// wire format can represent faithfully — static analysis without
// dynamic/crashsim stages, dumps, suggestions, suppressions, or budgets.
// Anything else runs fresh every time ("off" outcome).
#pragma once

#include <chrono>
#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <string>

#include "core/analysis_driver.h"
#include "serve/cache.h"
#include "support/thread_pool.h"

namespace deepmc::serve {

struct ServeOptions {
  core::DriverOptions driver;
  std::string cache_dir;  ///< empty = caching off (every request "off")
  uint32_t cache_version = DiskCache::kFormatVersion;
  DiskCache::Limits cache_limits;  ///< LRU bounds; 0 = unbounded
};

/// Per-request knobs (the analyze header fields, docs/SERVER.md).
struct RequestOptions {
  std::optional<core::PersistencyModel> model;  ///< override driver model
  core::ReportFormat format = core::ReportFormat::kJson;
  bool include_timing = false;
  /// Request id tagging every span and flight event this request emits
  /// (the header "id" field; the server assigns "req-N" when absent).
  /// Telemetry-only: the response body never depends on it.
  std::string request_id;
  /// Wall-clock deadline for this one request (0 = none): armed as an
  /// absolute DriverOptions::deadline_at so the whole degradation ladder
  /// shares one bound. Expiry degrades/fails *this* request exactly like
  /// a one-shot run under --budget-wall-ms; the daemon is untouched.
  uint64_t deadline_ms = 0;
};

struct ServeResult {
  std::string body;      ///< rendered report (text or JSON)
  int exit_code = 0;     ///< same scheme as the one-shot CLI
  bool failed = false;
  bool degraded = false;
  uint64_t warnings = 0;
  std::string cache;     ///< "unit-hit" | "warm" | "cold" | "off"
  /// The request's deadline watchdog fired (a unit degraded or failed
  /// with reason "budget-exhausted:wall-clock").
  bool deadline_expired = false;
};

class AnalysisService {
 public:
  explicit AnalysisService(ServeOptions opts);

  /// Analyze one named MIR text and render the response.
  ServeResult analyze_report(const std::string& name, const std::string& text,
                             const RequestOptions& req);

  struct Stats {
    uint64_t requests = 0;
    uint64_t unit_hits = 0;
    uint64_t unit_misses = 0;
    uint64_t root_hits = 0;
    uint64_t root_misses = 0;
    uint64_t last_dirty_roots = 0;  ///< dirty-cone size of the last plan
  };
  [[nodiscard]] Stats stats() const;
  [[nodiscard]] DiskCache::Stats cache_stats() const { return cache_.stats(); }
  /// Flat JSON object for the `stats` op and `--cache-stats`.
  [[nodiscard]] std::string stats_json() const;

  [[nodiscard]] const ServeOptions& options() const { return opts_; }

  /// Milliseconds since construction — the wall_ms of a `metrics`
  /// snapshot taken from a live daemon (volatile section only).
  [[nodiscard]] double uptime_ms() const;

 private:
  ServeOptions opts_;
  support::ThreadPool pool_;
  DiskCache cache_;
  std::chrono::steady_clock::time_point start_ =
      std::chrono::steady_clock::now();
  mutable std::mutex mu_;
  Stats stats_;
};

}  // namespace deepmc::serve
