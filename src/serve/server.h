// `deepmc serve` entry points: the session loop over one framed stream,
// the Unix-socket daemon wrapper, and the CLI that dispatches between
// daemon mode (--socket / --listen / --stdin) and client mode
// (--connect, built on the retrying ServeClient).
#pragma once

#include <cstdint>
#include <string>

namespace deepmc::serve {

class AnalysisService;

/// Per-session knobs the daemon threads into serve_stream. The default
/// (nullptr) keeps the historical behavior: blocking frame reads, no
/// daemon-side deadline — what --stdin mode and the tests want.
struct SessionHooks {
  /// Per-frame read bound (protocol.h read_request_timed); 0 = block.
  /// A timed-out frame closes the session silently — no response is
  /// owed to a peer that never finished asking.
  uint64_t io_timeout_ms = 0;
  /// Daemon default per-request deadline (--request-timeout-ms). The
  /// effective deadline is the *smaller* of this and the client's
  /// "deadline_ms" header; 0 means the other side decides alone.
  uint64_t default_deadline_ms = 0;
};

/// Serve one framed request stream (one connection, or stdin/stdout in
/// --stdin mode). Holds one fault-injection scope for the whole session,
/// so an armed "serve.accept:N" trips on the N-th request and stays
/// tripped — each affected request gets a retryable error response and
/// the stream keeps going. Returns 0 on clean EOF / stream error /
/// frame-read timeout, 1 when a shutdown request was served.
int serve_stream(AnalysisService& service, int in_fd, int out_fd,
                 const SessionHooks* hooks = nullptr);

/// Bind `path` and serve connections with a default-option ServeDaemon
/// (bounded concurrent sessions) until a shutdown request. Returns a CLI
/// exit code.
int serve_unix_socket(AnalysisService& service, const std::string& path);

/// `deepmc serve ...`: daemon (--socket / --listen / --stdin) or client
/// (--connect).
int serve_cli(int argc, char** argv);

}  // namespace deepmc::serve
