// `deepmc serve` entry points: the daemon loop over a Unix-domain
// socket, the single-stream loop used by --stdin mode and the tests, and
// the thin client that frames files/corpus modules into requests.
#pragma once

#include <string>

namespace deepmc::serve {

class AnalysisService;

/// Serve one framed request stream (one connection, or stdin/stdout in
/// --stdin mode). Holds one fault-injection scope for the whole session,
/// so an armed "serve.accept:N" trips on the N-th request and stays
/// tripped — each affected request gets an error response and the stream
/// keeps going. Returns 0 on clean EOF / stream error, 1 when a shutdown
/// request was served.
int serve_stream(AnalysisService& service, int in_fd, int out_fd);

/// Bind `path`, accept connections sequentially, serve each with
/// serve_stream until a shutdown request. Returns a CLI exit code.
int serve_unix_socket(AnalysisService& service, const std::string& path);

/// `deepmc serve ...`: daemon (--socket / --stdin) or client (--connect).
int serve_cli(int argc, char** argv);

}  // namespace deepmc::serve
