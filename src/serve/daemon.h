// Multi-client daemon front end for `deepmc serve` (docs/SERVER.md
// "Operating under load").
//
// Topology: one accept thread (the caller of run()) polls every listener
// plus a self-wake pipe; accepted connections go into a bounded queue
// drained by a fixed pool of session threads, each running serve_stream
// over one connection at a time. The AnalysisService behind them is
// shared — its thread pool, disk cache, and stats are all safe under
// concurrent sessions — so responses stay byte-identical to one-shot
// runs no matter how many clients are connected.
//
// Admission control: when the queue is full (every session slot busy and
// `accept_queue` connections already waiting), new connections are shed
// with an unsolicited `DMRS` status-2 "overloaded" response and closed.
// Shedding is the whole point — a burst beyond capacity degrades into
// retries, never into unbounded queueing or a wedged daemon.
//
// Drain: begin_drain() (shutdown op, SIGTERM/SIGINT via
// arm_signal_drain, or a fatal accept error) closes the listeners, sheds
// everything still queued, half-closes live connections (SHUT_RD — the
// in-flight request still gets its response), and joins the session
// threads. run() then returns.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

namespace deepmc::serve {

class AnalysisService;

struct DaemonOptions {
  size_t max_sessions = 4;   ///< concurrent session threads (min 1)
  size_t accept_queue = 16;  ///< accepted-but-unserved bound (min 1)
  /// Default per-request deadline applied when the client sends none
  /// (and the floor when it does — the daemon never waits longer than
  /// its own bound). 0 = no daemon-side deadline.
  uint64_t request_timeout_ms = 0;
  /// Per-frame read bound: an idle connection must start its next frame
  /// within this window, and a started frame must finish within it — a
  /// slowloris drip-feed cannot hold a session slot past one window per
  /// frame. 0 = block forever (the pre-daemon behavior).
  uint64_t io_timeout_ms = 30000;
};

class ServeDaemon {
 public:
  ServeDaemon(AnalysisService& service, DaemonOptions opts);
  ~ServeDaemon();

  ServeDaemon(const ServeDaemon&) = delete;
  ServeDaemon& operator=(const ServeDaemon&) = delete;

  /// Bind a listener. Call any combination before run(); each prints the
  /// "deepmc-serve: listening on ..." line scripts poll for. On failure
  /// returns false with a message in *err.
  bool listen_unix(const std::string& path, std::string* err);
  /// `spec` is "host:port" (IPv4 dotted quad) or bare "port"
  /// (= 127.0.0.1). Port 0 binds an ephemeral port; read it back with
  /// tcp_port().
  bool listen_tcp(const std::string& spec, std::string* err);
  [[nodiscard]] uint16_t tcp_port() const { return tcp_port_; }

  /// Route SIGTERM/SIGINT into begin_drain("signal"). Process-global;
  /// only the CLI daemon path calls this.
  void arm_signal_drain();

  /// Serve until drained. Returns 0 on a clean drain (shutdown op or
  /// signal), 65 after a fatal listener error.
  int run();

  /// Thread-safe; idempotent. Stops accepting, sheds the queue,
  /// half-closes live sessions, and wakes run() to finish.
  void begin_drain(const char* reason);

  struct Stats {
    uint64_t accepted = 0;        ///< connections accepted
    uint64_t shed = 0;            ///< connections rejected as overloaded
    uint64_t accept_retries = 0;  ///< transient accept() failures retried
    uint64_t sessions = 0;        ///< sessions actually served
  };
  [[nodiscard]] Stats stats() const;

 private:
  void worker_loop();
  void admit_or_shed(int conn);
  /// Transient accept() errno handling: returns true to keep accepting
  /// (possibly after a capped backoff sleep), false on a hard error.
  bool handle_accept_errno(int err);
  void publish_inflight();

  AnalysisService& service_;
  DaemonOptions opts_;
  std::vector<int> listen_fds_;
  std::vector<std::string> unix_paths_;  ///< unlinked on teardown
  uint16_t tcp_port_ = 0;
  int wake_r_ = -1;
  int wake_w_ = -1;
  uint64_t accept_backoff_ms_ = 0;  ///< current EMFILE-class backoff

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<int> queue_;   ///< accepted fds awaiting a session thread
  std::set<int> active_;    ///< fds currently inside serve_stream
  size_t inflight_ = 0;
  bool draining_ = false;
  int rc_ = 0;
  Stats stats_;
  std::vector<std::thread> workers_;
};

}  // namespace deepmc::serve
