// Binary (de)serialization of analysis results for the serve cache.
//
// Little-endian, length-prefixed, no framing of its own — the payload is
// wrapped by the cache entry header (src/serve/cache.h), which carries
// the format version and a payload hash, so this layer can assume intact
// bytes and still refuses structurally impossible input (every decode
// returns false instead of throwing or reading out of bounds).
//
// What round-trips is exactly what rendering reads: a decoded CheckResult
// merges byte-identically to the fresh one it was encoded from (warnings
// are already unique on CheckResult::add's (rule, loc) key, so re-adding
// reproduces the same vector), and a decoded UnitReport feeds
// Report::print_text / print_json with every field those paths touch for
// an ok, non-crashsim, non-dynamic unit.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "core/analysis_driver.h"

namespace deepmc::serve {

/// Append-only little-endian writer.
class WireWriter {
 public:
  void u32(uint32_t v) {
    for (int i = 0; i < 4; ++i)
      out_.push_back(static_cast<char>(v >> (i * 8)));
  }
  void u64(uint64_t v) {
    for (int i = 0; i < 8; ++i)
      out_.push_back(static_cast<char>(v >> (i * 8)));
  }
  void str(std::string_view s) {
    u64(s.size());
    out_.append(s.data(), s.size());
  }

  [[nodiscard]] const std::string& bytes() const { return out_; }
  std::string take() { return std::move(out_); }

 private:
  std::string out_;
};

/// Bounds-checked reader; once a read fails, every later read fails too.
class WireReader {
 public:
  explicit WireReader(std::string_view data) : data_(data) {}

  bool u32(uint32_t* v);
  bool u64(uint64_t* v);
  bool str(std::string* s);

  [[nodiscard]] bool ok() const { return !bad_; }
  /// True when every byte was consumed and nothing failed.
  [[nodiscard]] bool done() const { return !bad_ && pos_ == data_.size(); }

 private:
  std::string_view data_;
  size_t pos_ = 0;
  bool bad_ = false;
};

/// Raw per-root CheckResult (unfolded, unsorted), counters included.
std::string encode_check_result(const core::CheckResult& r);
bool decode_check_result(std::string_view data, core::CheckResult* out);

/// Unit-level payload: everything report rendering reads for an ok,
/// non-crashsim, non-dynamic unit. elapsed_ms is stored as written by the
/// caller (the service zeroes it — a cache hit has no meaningful timing).
std::string encode_unit_report(const core::UnitReport& u);
bool decode_unit_report(std::string_view data, core::UnitReport* out);

}  // namespace deepmc::serve
