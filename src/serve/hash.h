// Content hashing for the incremental analysis server (docs/SERVER.md).
//
// Cache keys concatenate two independent 64-bit streams over the same
// bytes — FNV-1a and an xorshift-multiply mix — into one 32-hex-digit
// key. Cheap, dependency-free, deterministic across platforms, and with
// a collision probability that is negligible at cache scale. Not
// cryptographic: the cache trusts its own directory, and corruption is
// caught separately by the payload hash in every entry header
// (src/serve/cache.h).
#pragma once

#include <cstdint>
#include <cstdio>
#include <string>
#include <string_view>

namespace deepmc::serve {

class Hasher {
 public:
  Hasher& update(std::string_view bytes) {
    for (unsigned char c : bytes) step(c);
    return *this;
  }

  Hasher& update_u64(uint64_t v) {
    for (int i = 0; i < 8; ++i)
      step(static_cast<unsigned char>(v >> (i * 8)));
    return *this;
  }

  /// A logical field: the bytes plus a separator, so ("ab","c") and
  /// ("a","bc") hash differently.
  Hasher& field(std::string_view bytes) {
    update(bytes);
    step(0x1f);
    return *this;
  }

  /// 32 lowercase hex digits (128 bits).
  [[nodiscard]] std::string hex() const {
    char buf[33];
    std::snprintf(buf, sizeof buf, "%016llx%016llx",
                  static_cast<unsigned long long>(a_),
                  static_cast<unsigned long long>(b_));
    return buf;
  }

 private:
  void step(unsigned char c) {
    a_ = (a_ ^ c) * 0x100000001b3ull;  // FNV-1a, 64-bit
    b_ ^= c;
    b_ ^= b_ << 13;
    b_ ^= b_ >> 7;
    b_ ^= b_ << 17;
    b_ += 0x9e3779b97f4a7c15ull;
  }

  uint64_t a_ = 0xcbf29ce484222325ull;  // FNV offset basis
  uint64_t b_ = 0x6a09e667f3bcc909ull;  // sqrt(2) fraction bits
};

inline std::string hash_bytes(std::string_view bytes) {
  return Hasher().update(bytes).hex();
}

}  // namespace deepmc::serve
