// Cache-key planning for the incremental analysis server.
//
// Two key granularities (docs/SERVER.md):
//
//   unit key  — options fingerprint + unit name + raw request text. A hit
//               replays the whole UnitReport without parsing or analysis.
//   root key  — options fingerprint + module struct layout + the content
//               of the root's *coupling group* + the root name. A hit
//               seeds the driver with that root's raw CheckResult and
//               only the dirty cone is recomputed.
//
// Coupling groups make per-root reuse sound: DSA's Bottom-Up/Top-Down
// phases flow points-to facts through shared callees, so two roots whose
// call closures overlap on a function that can carry such facts must be
// invalidated together. Roots are grouped with union-find over shared
// "coupling" functions (any defined function; declared externals couple
// only when they take arguments or return a value — a void/no-arg
// external cannot move facts between callers). The group content hash
// covers every function text in the union of the group's closures, so
// touching any function in the cone dirties exactly the roots that could
// observe it.
#pragma once

#include <string>
#include <vector>

#include "core/analysis_driver.h"
#include "ir/module.h"

namespace deepmc::serve {

/// Fingerprint of every DriverOptions knob that can change analysis
/// results. `opts.model` must already be the effective per-unit model.
std::string options_fingerprint(const core::DriverOptions& opts);

/// Whole-unit cache key over the raw request text (pre-parse).
std::string unit_key(const std::string& options_fp, const std::string& name,
                     const std::string& text);

struct RootPlan {
  std::string name;  ///< root function name, in trace_roots() order
  std::string key;   ///< per-root cache key
};

struct ModulePlan {
  std::vector<RootPlan> roots;
  size_t groups = 0;  ///< number of distinct coupling groups
};

/// Roots and per-root keys for `module`. Replicates
/// StaticChecker::trace_roots() ordering without running DSA.
ModulePlan plan_module(const ir::Module& module,
                       const std::string& options_fp);

}  // namespace deepmc::serve
