#include "serve/wire.h"

#include <cstring>

#include "core/report.h"

namespace deepmc::serve {

namespace {

// Upper bounds for enum validation on decode. Serialized entries come off
// disk; a stale or hand-edited entry must not smuggle an impossible enum
// value into the report renderer.
constexpr uint32_t kMaxCategory =
    static_cast<uint32_t>(core::BugCategory::kEmptyDurableTx);
constexpr uint32_t kMaxModel =
    static_cast<uint32_t>(core::PersistencyModel::kStrand);

}  // namespace

bool WireReader::u32(uint32_t* v) {
  if (bad_ || data_.size() - pos_ < 4) {
    bad_ = true;
    return false;
  }
  uint32_t r = 0;
  for (int i = 0; i < 4; ++i)
    r |= static_cast<uint32_t>(static_cast<unsigned char>(data_[pos_ + i]))
         << (i * 8);
  pos_ += 4;
  *v = r;
  return true;
}

bool WireReader::u64(uint64_t* v) {
  if (bad_ || data_.size() - pos_ < 8) {
    bad_ = true;
    return false;
  }
  uint64_t r = 0;
  for (int i = 0; i < 8; ++i)
    r |= static_cast<uint64_t>(static_cast<unsigned char>(data_[pos_ + i]))
         << (i * 8);
  pos_ += 8;
  *v = r;
  return true;
}

bool WireReader::str(std::string* s) {
  uint64_t len = 0;
  if (!u64(&len)) return false;
  if (len > data_.size() - pos_) {
    bad_ = true;
    return false;
  }
  s->assign(data_.data() + pos_, static_cast<size_t>(len));
  pos_ += static_cast<size_t>(len);
  return true;
}

std::string encode_check_result(const core::CheckResult& r) {
  WireWriter w;
  w.u64(r.warnings().size());
  for (const core::Warning& warning : r.warnings()) {
    w.str(warning.rule);
    w.u32(static_cast<uint32_t>(warning.category));
    w.u32(static_cast<uint32_t>(warning.model));
    w.str(warning.loc.file);
    w.u32(warning.loc.line);
    w.str(warning.function);
    w.str(warning.message);
  }
  w.u64(r.traces_checked);
  w.u64(r.functions_checked);
  return w.take();
}

bool decode_check_result(std::string_view data, core::CheckResult* out) {
  WireReader r(data);
  uint64_t count = 0;
  if (!r.u64(&count)) return false;
  core::CheckResult result;
  for (uint64_t i = 0; i < count; ++i) {
    core::Warning w;
    uint32_t category = 0;
    uint32_t model = 0;
    uint32_t line = 0;
    if (!r.str(&w.rule) || !r.u32(&category) || !r.u32(&model) ||
        !r.str(&w.loc.file) || !r.u32(&line) || !r.str(&w.function) ||
        !r.str(&w.message))
      return false;
    if (category > kMaxCategory || model > kMaxModel) return false;
    w.category = static_cast<core::BugCategory>(category);
    w.model = static_cast<core::PersistencyModel>(model);
    w.loc.line = line;
    // Stored vectors are already unique on add()'s (rule, loc) key, so
    // re-adding reproduces the encoded vector exactly.
    result.add(std::move(w));
  }
  uint64_t traces = 0;
  uint64_t functions = 0;
  if (!r.u64(&traces) || !r.u64(&functions) || !r.done()) return false;
  result.traces_checked = static_cast<size_t>(traces);
  result.functions_checked = static_cast<size_t>(functions);
  *out = std::move(result);
  return true;
}

std::string encode_unit_report(const core::UnitReport& u) {
  WireWriter w;
  w.str(u.name);
  w.u32(static_cast<uint32_t>(u.model));
  w.u64(u.suppressed);
  w.str(u.text);
  w.u64(u.stats.trace_roots);
  w.u64(u.stats.functions_checked);
  w.u64(u.stats.traces_checked);
  w.u64(u.stats.dsa_nodes);
  w.u64(u.stats.persistent_dsa_nodes);
  w.str(encode_check_result(u.result));
  return w.take();
}

bool decode_unit_report(std::string_view data, core::UnitReport* out) {
  WireReader r(data);
  core::UnitReport u;
  uint32_t model = 0;
  uint64_t suppressed = 0;
  uint64_t trace_roots = 0;
  uint64_t functions_checked = 0;
  uint64_t traces_checked = 0;
  uint64_t dsa_nodes = 0;
  uint64_t persistent_dsa_nodes = 0;
  std::string result_blob;
  if (!r.str(&u.name) || !r.u32(&model) || !r.u64(&suppressed) ||
      !r.str(&u.text) || !r.u64(&trace_roots) || !r.u64(&functions_checked) ||
      !r.u64(&traces_checked) || !r.u64(&dsa_nodes) ||
      !r.u64(&persistent_dsa_nodes) || !r.str(&result_blob) || !r.done())
    return false;
  if (model > kMaxModel) return false;
  if (!decode_check_result(result_blob, &u.result)) return false;
  u.model = static_cast<core::PersistencyModel>(model);
  u.suppressed = static_cast<size_t>(suppressed);
  u.stats.trace_roots = static_cast<size_t>(trace_roots);
  u.stats.functions_checked = static_cast<size_t>(functions_checked);
  u.stats.traces_checked = static_cast<size_t>(traces_checked);
  u.stats.dsa_nodes = static_cast<size_t>(dsa_nodes);
  u.stats.persistent_dsa_nodes = static_cast<size_t>(persistent_dsa_nodes);
  u.stats.elapsed_ms = 0;  // cache hits have no meaningful timing
  u.status = core::UnitStatus::kOk;
  u.failed = false;
  *out = std::move(u);
  return true;
}

}  // namespace deepmc::serve
