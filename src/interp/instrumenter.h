// IR instrumenter (paper §4.4, step 5 of Figure 8).
//
// Injects calls to the DeepMC runtime library into MIR so that the
// instrumented program invokes the dynamic checker during execution:
//
//   __deepmc_rt_alloc(ptr, size)   after each pm.alloc
//   __deepmc_rt_write(ptr, size)   before persistent stores
//   __deepmc_rt_read(ptr, size)    before persistent loads
//
// Following the paper's two cost-cutting rules, the instrumenter
//  (1) consults DSA so only accesses that may touch persistent memory are
//      instrumented ("avoid unnecessary instrumentation of objects that do
//      not reside in the NVM"), and
//  (2) only instruments accesses inside annotated epoch/strand/tx regions —
//      including functions called from inside such regions — rather than
//      every memory access in the program.
//
// The MIR interpreter recognizes the __deepmc_rt_* callees and routes them
// to a RuntimeChecker.
#pragma once

#include <string>

#include "analysis/dsa.h"
#include "ir/module.h"

namespace deepmc::interp {

inline constexpr const char* kRtAlloc = "__deepmc_rt_alloc";
inline constexpr const char* kRtWrite = "__deepmc_rt_write";
inline constexpr const char* kRtRead = "__deepmc_rt_read";

[[nodiscard]] inline bool is_runtime_hook(const std::string& callee) {
  return callee == kRtAlloc || callee == kRtWrite || callee == kRtRead;
}

struct InstrumenterOptions {
  /// Instrument every function, not only region-reachable code. Used by the
  /// overhead ablation; the paper's default is region-scoped.
  bool whole_program = false;
  /// Instrument persistent loads too (RAW detection needs them).
  bool instrument_reads = true;
};

struct InstrumenterStats {
  size_t writes_instrumented = 0;
  size_t reads_instrumented = 0;
  size_t allocs_instrumented = 0;
  size_t accesses_skipped_not_persistent = 0;
  size_t accesses_skipped_outside_regions = 0;
};

/// Instruments `module` in place. `dsa` must already be run on the module.
InstrumenterStats instrument_module(ir::Module& module,
                                    const analysis::DSA& dsa,
                                    InstrumenterOptions opts = {});

}  // namespace deepmc::interp
