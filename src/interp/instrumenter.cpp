#include "interp/instrumenter.h"

#include <deque>
#include <map>
#include <set>

#include "obs/metrics.h"

namespace deepmc::interp {

using namespace ir;

namespace {

/// Forward dataflow: for each basic block, can execution reach its entry
/// with a region (tx/epoch/strand) open? Intra-block region state is then
/// recomputed while instrumenting.
std::map<const BasicBlock*, bool> region_entry_state(const Function& f) {
  std::map<const BasicBlock*, bool> in_region;
  for (const auto& bb : f.blocks()) in_region[bb.get()] = false;
  bool changed = true;
  while (changed) {
    changed = false;
    for (const auto& bb : f.blocks()) {
      bool depth_open = in_region[bb.get()];
      int depth = depth_open ? 1 : 0;
      for (const auto& inst : bb->instructions()) {
        if (inst->opcode() == Opcode::kTxBegin) ++depth;
        else if (inst->opcode() == Opcode::kTxEnd && depth > 0) --depth;
      }
      const bool out = depth > 0;
      for (BasicBlock* succ : bb->successors()) {
        if (out && !in_region[succ]) {
          in_region[succ] = true;
          changed = true;
        }
      }
    }
  }
  return in_region;
}

/// Functions that contain region markers (`seeds`) or are (transitively)
/// called from inside a region (`reached`). Seeds are instrumented with
/// intra-function region-depth tracking; reached callees are instrumented
/// throughout (they only execute inside regions).
struct RegionFunctions {
  std::set<const Function*> seeds;
  std::set<const Function*> reached;
};

RegionFunctions region_functions(const Module& m) {
  std::set<const Function*> seeds;
  for (const auto& f : m.functions()) {
    for (const auto& bb : f->blocks()) {
      for (const auto& inst : bb->instructions()) {
        if (inst->opcode() == Opcode::kTxBegin) {
          seeds.insert(f.get());
          break;
        }
      }
    }
  }
  // Propagate to callees: a call inside an open region (or anywhere in an
  // already-region function's body) pulls the callee in. Conservative:
  // any callee of a region function is instrumented.
  std::set<const Function*> result = seeds;
  std::deque<const Function*> work(seeds.begin(), seeds.end());
  while (!work.empty()) {
    const Function* f = work.front();
    work.pop_front();
    for (const auto& bb : f->blocks()) {
      for (const auto& inst : bb->instructions()) {
        if (inst->opcode() != Opcode::kCall) continue;
        const auto* call = static_cast<const CallInst*>(inst.get());
        if (const Function* callee = m.find_function(call->callee())) {
          if (!callee->is_declaration() && result.insert(callee).second)
            work.push_back(callee);
        }
      }
    }
  }
  return RegionFunctions{std::move(seeds), std::move(result)};
}

/// Instrument unless the pointer provably targets volatile memory. The
/// paper's DSA filter exists to skip non-NVM objects; when provenance is
/// unknown (laundered or externally-produced pointers) the sound choice is
/// to instrument — the runtime discards events outside the PM range anyway.
bool maybe_persistent(const analysis::DSA& dsa, const Value* ptr) {
  analysis::DSCell c = dsa.cell_for(ptr);
  if (c.null()) return true;  // unknown provenance
  if (c.node->persistent()) return true;
  if (c.node->has(analysis::DSNode::kStack)) return false;
  return true;  // unknown / incomplete
}

}  // namespace

InstrumenterStats instrument_module(Module& module, const analysis::DSA& dsa,
                                    InstrumenterOptions opts) {
  InstrumenterStats stats;
  TypeContext& types = module.types();
  const Type* void_ty = types.void_type();
  const Type* i64 = types.i64();
  const Type* ptr = types.opaque_ptr();

  // Declare the runtime hooks once.
  for (const char* name : {kRtAlloc, kRtWrite, kRtRead}) {
    if (!module.find_function(name))
      module.create_function(name, void_ty, {{"p", ptr}, {"size", i64}});
  }

  const RegionFunctions rf = region_functions(module);

  for (const auto& f : module.functions()) {
    if (f->is_declaration()) continue;
    const bool has_own_markers = rf.seeds.count(f.get()) != 0;
    const bool reached_from_region = rf.reached.count(f.get()) != 0;
    if (!opts.whole_program && !reached_from_region) {
      // Count skipped persistent accesses for the stats.
      for (const auto& bb : f->blocks())
        for (const auto& inst : bb->instructions())
          if (inst->opcode() == Opcode::kStore ||
              inst->opcode() == Opcode::kLoad)
            ++stats.accesses_skipped_outside_regions;
      continue;
    }
    const auto entry_state = region_entry_state(*f);

    for (const auto& bb : f->blocks()) {
      // Walk by index; insertions shift positions.
      int depth = entry_state.at(bb.get()) ? 1 : 0;
      for (size_t i = 0; i < bb->size(); ++i) {
        Instruction* inst = bb->instructions()[i].get();
        const Opcode op = inst->opcode();
        if (op == Opcode::kTxBegin) {
          ++depth;
          continue;
        }
        if (op == Opcode::kTxEnd) {
          if (depth > 0) --depth;
          continue;
        }
        auto make_size = [&](uint64_t n) -> Value* {
          return f->own(std::make_unique<Constant>(i64, static_cast<int64_t>(n)));
        };
        auto insert_hook = [&](const char* hook, Value* p, uint64_t size) {
          auto call = std::make_unique<CallInst>(
              void_ty, hook, std::vector<Value*>{p, make_size(size)},
              std::string{});
          call->set_loc(inst->loc());
          bb->insert(i, std::move(call));
          ++i;  // skip over the inserted hook
        };

        // Allocations are always registered — the runtime needs to know
        // where persistent objects live regardless of regions.
        if (op == Opcode::kPmAlloc) {
          auto* a = static_cast<PmAllocInst*>(inst);
          auto call = std::make_unique<CallInst>(
              void_ty, kRtAlloc,
              std::vector<Value*>{a, make_size(a->allocated_type()->size())},
              std::string{});
          call->set_loc(inst->loc());
          bb->insert(i + 1, std::move(call));
          ++i;
          ++stats.allocs_instrumented;
          continue;
        }

        // Inside a marker-containing function, instrument only between the
        // markers; a callee reached from a region runs entirely inside one.
        const bool active = opts.whole_program || depth > 0 ||
                            (reached_from_region && !has_own_markers);
        if (!active) {
          if (op == Opcode::kStore || op == Opcode::kLoad)
            ++stats.accesses_skipped_outside_regions;
          continue;
        }

        if (op == Opcode::kStore) {
          auto* s = static_cast<StoreInst*>(inst);
          if (!maybe_persistent(dsa, s->pointer())) {
            ++stats.accesses_skipped_not_persistent;
            continue;
          }
          insert_hook(kRtWrite, s->pointer(), s->value()->type()->size());
          ++stats.writes_instrumented;
        } else if (op == Opcode::kMemSet) {
          auto* ms = static_cast<MemSetInst*>(inst);
          if (!maybe_persistent(dsa, ms->pointer())) {
            ++stats.accesses_skipped_not_persistent;
            continue;
          }
          uint64_t size = 8;
          if (auto* c = dynamic_cast<Constant*>(ms->size()))
            size = static_cast<uint64_t>(c->value());
          insert_hook(kRtWrite, ms->pointer(), size);
          ++stats.writes_instrumented;
        } else if (op == Opcode::kLoad && opts.instrument_reads) {
          auto* l = static_cast<LoadInst*>(inst);
          if (!maybe_persistent(dsa, l->pointer())) {
            ++stats.accesses_skipped_not_persistent;
            continue;
          }
          insert_hook(kRtRead, l->pointer(), l->type()->size());
          ++stats.reads_instrumented;
        }
      }
    }
  }
  if (obs::enabled()) {
    static obs::Counter hooks = obs::registry().counter(
        "interp.instrumented_calls_total", obs::Volatility::kStable,
        "runtime hook calls inserted by the instrumenter");
    hooks.inc(stats.allocs_instrumented + stats.writes_instrumented +
              stats.reads_instrumented);
  }
  return stats;
}

}  // namespace deepmc::interp
