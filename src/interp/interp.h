// MIR interpreter.
//
// Executes MIR against the PM emulation substrate (src/pmem). This is the
// dynamic half of the reproduction: instrumented modules invoke the
// __deepmc_rt_* hooks, which the interpreter routes to a RuntimeChecker
// (src/runtime), exactly as the paper's instrumented native binaries call
// the DeepMC runtime library.
//
// Memory layout: persistent addresses are pool offsets in
// [0, pool.size()); volatile (alloca) memory lives at kVolatileBase and
// above. Pointers are plain 64-bit values, so programs can pass them
// through integer fields the way C does.
//
// Persistence intrinsics map 1:1 onto substrate operations, so a crash can
// be simulated at any point after run() and the surviving pool image
// inspected — this is how the corpus validates that model-violation bugs
// have real crash-consistency consequences.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <stdexcept>
#include <vector>

#include "ir/module.h"
#include "pmem/pool.h"
#include "runtime/dynamic_checker.h"
#include "support/budget.h"

namespace deepmc::interp {

inline constexpr uint64_t kVolatileBase = 1ull << 40;

class InterpError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// The step-budget trap, distinguishable from genuine program traps so
/// the resilience layer can reclassify it (InterpError keeps catching it
/// for existing callers).
class StepLimitReached : public InterpError {
 public:
  explicit StepLimitReached(uint64_t limit)
      : InterpError("step budget exceeded"), limit_(limit) {}

  [[nodiscard]] uint64_t limit() const { return limit_; }

 private:
  uint64_t limit_ = 0;
};

class Interpreter {
 public:
  struct Options {
    uint64_t max_steps = 10'000'000;  ///< instruction budget per run()
    uint64_t max_call_depth = 256;
    uint64_t volatile_bytes = 1 << 20;
    /// Cooperative cancellation, polled every few thousand steps; fires
    /// as support::CancelledError out of run(). Default token never fires.
    support::CancelToken cancel;
  };

  Interpreter(const ir::Module& module, pmem::PmPool& pool,
              rt::RuntimeChecker* runtime = nullptr)
      : Interpreter(module, pool, runtime, Options{}) {}
  Interpreter(const ir::Module& module, pmem::PmPool& pool,
              rt::RuntimeChecker* runtime, Options opts);

  /// Execute `f` with integer/pointer arguments. Returns the ret value (if
  /// any). Throws InterpError on traps (bad memory, step budget, ...).
  std::optional<uint64_t> run(const ir::Function& f,
                              std::vector<uint64_t> args = {});

  /// Execute the module's "main" function.
  std::optional<uint64_t> run_main();

  [[nodiscard]] uint64_t steps_executed() const { return steps_; }
  [[nodiscard]] pmem::PmPool& pool() { return *pool_; }

 private:
  uint64_t eval(const std::map<const ir::Value*, uint64_t>& regs,
                const ir::Value* v) const;
  std::optional<uint64_t> exec_function(const ir::Function& f,
                                        const std::vector<uint64_t>& args,
                                        uint64_t depth);

  void mem_write(uint64_t addr, const void* src, uint64_t size);
  void mem_read(uint64_t addr, void* dst, uint64_t size) const;
  uint64_t load_int(uint64_t addr, uint64_t size) const;
  void store_int(uint64_t addr, uint64_t value, uint64_t size);

  uint64_t gep_address(const std::map<const ir::Value*, uint64_t>& regs,
                       const ir::GepInst* gep) const;

  const ir::Module& module_;
  pmem::PmPool* pool_;
  rt::RuntimeChecker* rt_;
  Options opts_;

  std::vector<uint8_t> volatile_mem_;
  uint64_t volatile_bump_ = 0;
  uint64_t steps_ = 0;
  rt::StrandId current_strand_ = 0;
  std::vector<rt::StrandId> strand_stack_;
};

}  // namespace deepmc::interp
