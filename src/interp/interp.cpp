#include "interp/interp.h"

#include <cstring>
#include <exception>

#include "interp/instrumenter.h"
#include "obs/metrics.h"
#include "obs/tracer.h"
#include "support/faultpoint.h"

namespace deepmc::interp {

using namespace ir;

namespace {

// Interpretation is deterministic (fixed step budget, no scheduling), so
// these counters are stable across runs and --jobs values.

obs::Counter& interp_runs() {
  static obs::Counter c = obs::registry().counter(
      "interp.runs_total", obs::Volatility::kStable,
      "interpreter entry points executed");
  return c;
}

obs::Counter& interp_steps() {
  static obs::Counter c = obs::registry().counter(
      "interp.steps_total", obs::Volatility::kStable,
      "instructions interpreted");
  return c;
}

obs::Counter& interp_traps() {
  static obs::Counter c = obs::registry().counter(
      "interp.traps_total", obs::Volatility::kStable,
      "interpreter runs ended by a trap (InterpError)");
  return c;
}

// Accounts interpreted steps (even when the run traps) without disturbing
// the InterpError propagation path.
class RunAccounting {
 public:
  explicit RunAccounting(const uint64_t& steps)
      : steps_(steps), start_(steps) {}
  ~RunAccounting() {
    if (!obs::enabled()) return;
    interp_runs().inc();
    interp_steps().inc(steps_ - start_);
    if (std::uncaught_exceptions() > 0) interp_traps().inc();
  }

 private:
  const uint64_t& steps_;
  uint64_t start_;
};

}  // namespace

Interpreter::Interpreter(const Module& module, pmem::PmPool& pool,
                         rt::RuntimeChecker* runtime, Options opts)
    : module_(module), pool_(&pool), rt_(runtime), opts_(opts) {
  volatile_mem_.resize(opts_.volatile_bytes, 0);
}

uint64_t Interpreter::eval(const std::map<const Value*, uint64_t>& regs,
                           const Value* v) const {
  if (const auto* c = dynamic_cast<const Constant*>(v))
    return static_cast<uint64_t>(c->value());
  auto it = regs.find(v);
  if (it == regs.end())
    throw InterpError("use of undefined value %" + v->name());
  return it->second;
}

void Interpreter::mem_write(uint64_t addr, const void* src, uint64_t size) {
  if (addr >= kVolatileBase) {
    const uint64_t off = addr - kVolatileBase;
    if (off + size > volatile_mem_.size())
      throw InterpError("volatile store out of range");
    std::memcpy(volatile_mem_.data() + off, src, size);
    return;
  }
  pool_->store(addr, src, size);
}

void Interpreter::mem_read(uint64_t addr, void* dst, uint64_t size) const {
  if (addr >= kVolatileBase) {
    const uint64_t off = addr - kVolatileBase;
    if (off + size > volatile_mem_.size())
      throw InterpError("volatile load out of range");
    std::memcpy(dst, volatile_mem_.data() + off, size);
    return;
  }
  pool_->load(addr, dst, size);
}

uint64_t Interpreter::load_int(uint64_t addr, uint64_t size) const {
  uint64_t v = 0;
  if (size > 8) size = 8;
  mem_read(addr, &v, size);
  return v;
}

void Interpreter::store_int(uint64_t addr, uint64_t value, uint64_t size) {
  if (size > 8) size = 8;
  mem_write(addr, &value, size);
}

uint64_t Interpreter::gep_address(const std::map<const Value*, uint64_t>& regs,
                                  const GepInst* gep) const {
  const uint64_t base = eval(regs, gep->base());
  const uint64_t idx = eval(regs, gep->index());
  const auto* pt = dynamic_cast<const PointerType*>(gep->base()->type());
  const Type* pointee = pt && !pt->is_opaque() ? pt->pointee() : nullptr;
  if (const auto* st = dynamic_cast<const StructType*>(pointee)) {
    if (idx < st->field_count()) return base + st->field_offset(idx);
    throw InterpError("gep field index out of range in %" + gep->name());
  }
  if (const auto* at = dynamic_cast<const ArrayType*>(pointee))
    return base + idx * at->element()->size();
  if (pointee) return base + idx * pointee->size();
  return base + idx * 8;  // untyped pointer: index in 8-byte words
}

std::optional<uint64_t> Interpreter::run(const Function& f,
                                         std::vector<uint64_t> args) {
  obs::Span span("interp.run", "interp", obs::span_arg("function", f.name()));
  RunAccounting accounting(steps_);
  return exec_function(f, args, 0);
}

std::optional<uint64_t> Interpreter::run_main() {
  const Function* main = module_.find_function("main");
  if (!main) throw InterpError("module has no @main");
  return run(*main);
}

std::optional<uint64_t> Interpreter::exec_function(
    const Function& f, const std::vector<uint64_t>& args, uint64_t depth) {
  if (depth > opts_.max_call_depth) throw InterpError("call depth exceeded");
  if (f.is_declaration()) return 0;  // unknown external: no-op returning 0

  std::map<const Value*, uint64_t> regs;
  for (size_t i = 0; i < f.arg_count() && i < args.size(); ++i)
    regs[f.arg(i)] = args[i];

  const BasicBlock* bb = f.entry();
  size_t ip = 0;
  while (bb) {
    if (ip >= bb->size())
      throw InterpError("fell off the end of block " + bb->name());
    const Instruction* inst = bb->instructions()[ip].get();
    DEEPMC_FAULTPOINT("interp.step");
    if (++steps_ > opts_.max_steps) throw StepLimitReached(opts_.max_steps);
    if ((steps_ & 0xFFF) == 0) opts_.cancel.check();

    // Forward the instruction's source location to an attached event sink
    // before a persistence event it is about to cause, so recorded pool
    // events carry program coordinates (crash-state enumeration needs them
    // to name culprit stores/flushes).
    pmem::PmEventSink* sink = pool_->event_sink();
    auto note_loc = [&](uint64_t addr) {
      if (sink && addr < kVolatileBase) sink->on_source_loc(inst->loc());
    };

    switch (inst->opcode()) {
      case Opcode::kAlloca: {
        const auto* a = static_cast<const AllocaInst*>(inst);
        const uint64_t size = std::max<uint64_t>(a->allocated_type()->size(), 8);
        const uint64_t aligned = (volatile_bump_ + 7) / 8 * 8;
        if (aligned + size > volatile_mem_.size())
          throw InterpError("volatile memory exhausted");
        volatile_bump_ = aligned + size;
        regs[inst] = kVolatileBase + aligned;
        break;
      }
      case Opcode::kPmAlloc: {
        const auto* a = static_cast<const PmAllocInst*>(inst);
        regs[inst] = pool_->alloc(a->allocated_type()->size());
        break;
      }
      case Opcode::kPmFree: {
        const auto* fr = static_cast<const PmFreeInst*>(inst);
        const uint64_t p = eval(regs, fr->pointer());
        if (p < kVolatileBase) {
          pool_->free(p);
          if (rt_) rt_->on_free(p);
        }
        break;
      }
      case Opcode::kLoad: {
        const auto* l = static_cast<const LoadInst*>(inst);
        regs[inst] = load_int(eval(regs, l->pointer()), l->type()->size());
        break;
      }
      case Opcode::kStore: {
        const auto* s = static_cast<const StoreInst*>(inst);
        const uint64_t addr = eval(regs, s->pointer());
        note_loc(addr);
        store_int(addr, eval(regs, s->value()), s->value()->type()->size());
        break;
      }
      case Opcode::kGep:
        regs[inst] = gep_address(regs, static_cast<const GepInst*>(inst));
        break;
      case Opcode::kCast:
        regs[inst] =
            eval(regs, static_cast<const CastInst*>(inst)->source());
        break;
      case Opcode::kMemSet: {
        const auto* m = static_cast<const MemSetInst*>(inst);
        const uint64_t p = eval(regs, m->pointer());
        const uint64_t byte = eval(regs, m->byte());
        const uint64_t size = eval(regs, m->size());
        std::vector<uint8_t> buf(size, static_cast<uint8_t>(byte));
        note_loc(p);
        if (size) mem_write(p, buf.data(), size);
        break;
      }
      case Opcode::kMemCpy: {
        const auto* m = static_cast<const MemCpyInst*>(inst);
        const uint64_t d = eval(regs, m->dest());
        const uint64_t s = eval(regs, m->source());
        const uint64_t size = eval(regs, m->size());
        note_loc(d);
        std::vector<uint8_t> buf(size);
        if (size) {
          mem_read(s, buf.data(), size);
          mem_write(d, buf.data(), size);
        }
        break;
      }
      case Opcode::kFlush: {
        const auto* fl = static_cast<const FlushInst*>(inst);
        const uint64_t p = eval(regs, fl->pointer());
        const uint64_t size = eval(regs, fl->size());
        if (p < kVolatileBase) {
          note_loc(p);
          const bool redundant = pool_->flush(p, size);
          if (rt_) {
            rt_->on_flush(current_strand_, p, size);
            if (redundant) rt_->report_redundant_flush(inst->loc(), p);
          }
        }
        break;
      }
      case Opcode::kPersist: {
        const auto* fl = static_cast<const FlushInst*>(inst);
        const uint64_t p = eval(regs, fl->pointer());
        const uint64_t size = eval(regs, fl->size());
        note_loc(p);
        if (p < kVolatileBase) {
          const bool redundant = pool_->flush(p, size);
          if (rt_) {
            rt_->on_flush(current_strand_, p, size);
            if (redundant) rt_->report_redundant_flush(inst->loc(), p);
          }
        }
        pool_->fence();
        if (rt_) rt_->on_fence(current_strand_);
        break;
      }
      case Opcode::kFence:
        note_loc(0);
        pool_->fence();
        if (rt_) rt_->on_fence(current_strand_);
        break;
      case Opcode::kTxAdd: {
        // Undo-log registration: framework-level semantics (snapshot +
        // commit-time flush) are modeled by the mini frameworks; at IR
        // level tx.add is a persistence hint — forwarded to the event sink
        // so the crash-state oracle knows which ranges are logged.
        if (sink) {
          const auto* ta = static_cast<const TxAddInst*>(inst);
          const uint64_t p = eval(regs, ta->pointer());
          const uint64_t size = eval(regs, ta->size());
          if (p < kVolatileBase) sink->on_tx_add(p, size, inst->loc());
        }
        break;
      }
      case Opcode::kTxBegin: {
        const auto* tb = static_cast<const TxBeginInst*>(inst);
        if (sink)
          sink->on_region_begin(static_cast<uint8_t>(tb->region_kind()),
                                inst->loc());
        // Strands are *meant* to run with each other's flushes in flight;
        // only tx/epoch boundaries owe a barrier.
        if (rt_ && tb->region_kind() != RegionKind::kStrand &&
            !pool_->tracker().pending_lines().empty())
          rt_->report_unfenced_tx_begin(inst->loc());
        if (rt_) {
          if (tb->region_kind() == RegionKind::kStrand) {
            strand_stack_.push_back(current_strand_);
            current_strand_ = rt_->strand_begin();
          } else {
            rt_->epoch_begin();
          }
        }
        break;
      }
      case Opcode::kTxEnd: {
        const auto* te = static_cast<const TxEndInst*>(inst);
        if (sink)
          sink->on_region_end(static_cast<uint8_t>(te->region_kind()),
                              inst->loc());
        if (rt_) {
          if (te->region_kind() == RegionKind::kStrand) {
            rt_->strand_end(current_strand_);
            current_strand_ =
                strand_stack_.empty() ? 0 : strand_stack_.back();
            if (!strand_stack_.empty()) strand_stack_.pop_back();
          } else {
            rt_->epoch_end();
          }
        }
        break;
      }
      case Opcode::kCall: {
        const auto* c = static_cast<const CallInst*>(inst);
        std::vector<uint64_t> call_args;
        call_args.reserve(c->args().size());
        for (Value* a : c->args()) call_args.push_back(eval(regs, a));

        if (is_runtime_hook(c->callee())) {
          if (rt_ && call_args.size() >= 2 &&
              call_args[0] < kVolatileBase) {
            if (c->callee() == kRtWrite)
              rt_->on_write(current_strand_, call_args[0], call_args[1],
                            c->loc());
            else if (c->callee() == kRtRead)
              rt_->on_read(current_strand_, call_args[0], call_args[1],
                           c->loc());
            else if (c->callee() == kRtAlloc)
              rt_->on_alloc(call_args[0], call_args[1]);
          }
          break;
        }

        const Function* callee = module_.find_function(c->callee());
        if (!callee) {
          regs[inst] = 0;  // unknown external
          break;
        }
        auto result = exec_function(*callee, call_args, depth + 1);
        if (!c->type()->is_void()) regs[inst] = result.value_or(0);
        break;
      }
      case Opcode::kBinOp: {
        const auto* b = static_cast<const BinOpInst*>(inst);
        const int64_t l = static_cast<int64_t>(eval(regs, b->lhs()));
        const int64_t r = static_cast<int64_t>(eval(regs, b->rhs()));
        int64_t out = 0;
        switch (b->bin_kind()) {
          case BinOpKind::kAdd: out = l + r; break;
          case BinOpKind::kSub: out = l - r; break;
          case BinOpKind::kMul: out = l * r; break;
          case BinOpKind::kDiv:
            if (r == 0) throw InterpError("division by zero");
            out = l / r;
            break;
          case BinOpKind::kEq: out = l == r; break;
          case BinOpKind::kNe: out = l != r; break;
          case BinOpKind::kLt: out = l < r; break;
          case BinOpKind::kLe: out = l <= r; break;
        }
        regs[inst] = static_cast<uint64_t>(out);
        break;
      }
      case Opcode::kRet: {
        const auto* r = static_cast<const RetInst*>(inst);
        if (r->value()) return eval(regs, r->value());
        return std::nullopt;
      }
      case Opcode::kBr: {
        const auto* br = static_cast<const BrInst*>(inst);
        if (br->is_conditional()) {
          bb = eval(regs, br->condition()) ? br->true_target()
                                           : br->false_target();
        } else {
          bb = br->true_target();
        }
        ip = 0;
        continue;
      }
    }
    ++ip;
  }
  return std::nullopt;
}

}  // namespace deepmc::interp
