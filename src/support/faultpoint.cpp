#include "support/faultpoint.h"

#include <cstdlib>
#include <mutex>

#include "obs/flight.h"

namespace deepmc::support {

namespace {

// Stable order: tests, docs, and --list-fault-points all show this list.
const std::vector<std::string>& point_names() {
  static const std::vector<std::string> kPoints = {
      "parser.read",     // reading/parsing an input .mir file
      "dsa.node-alloc",  // DSA graph node allocation
      "trace.step",      // trace-collection instruction step
      "checker.root",    // static checker per-root entry
      "enum.image",      // crash-image emission in the enumerator
      "interp.step",     // interpreter instruction step
      "serve.accept",    // request acceptance in the analysis server
      "cache.read",      // serve-cache entry read (trip = treated as miss)
      "cache.write",     // serve-cache entry write (trip = entry dropped)
      "load.op",         // workload-engine operation dispatch (deepmc-load)
      "load.crash",      // workload-engine crash-recovery entry
  };
  return kPoints;
}

// The armed plan: counts[i] > 0 arms registered point i. Guarded by a
// mutex (arming happens once at startup / in tests); FaultScope snapshots
// it under the same lock.
std::mutex g_plan_mu;
std::array<int64_t, detail::kMaxFaultPoints> g_plan{};

}  // namespace

namespace detail {

std::atomic<bool> faults_active{false};

thread_local FaultScope* tl_scope = nullptr;

void fault_hit(int idx, const char* name) {
  if (idx < 0) return;
  FaultScope* scope = tl_scope;
  if (scope != nullptr && scope->armed()) scope->hit(idx, name);
}

}  // namespace detail

const std::vector<std::string>& registered_fault_points() {
  return point_names();
}

int fault_point_index(std::string_view name) {
  const auto& pts = point_names();
  for (size_t i = 0; i < pts.size(); ++i)
    if (pts[i] == name) return static_cast<int>(i);
  return -1;
}

void arm_fault(const std::string& spec) {
  const size_t colon = spec.rfind(':');
  if (colon == std::string::npos || colon == 0 || colon + 1 == spec.size())
    throw std::invalid_argument("--inject-fault expects name:count, got '" +
                                spec + "'");
  const std::string name = spec.substr(0, colon);
  const int idx = fault_point_index(name);
  if (idx < 0)
    throw std::invalid_argument("unknown fault point '" + name +
                                "' (see --list-fault-points)");
  int64_t count = 0;
  try {
    size_t used = 0;
    count = std::stoll(spec.substr(colon + 1), &used);
    if (used != spec.size() - colon - 1) count = 0;
  } catch (const std::exception&) {
    count = 0;
  }
  if (count < 1)
    throw std::invalid_argument("fault count in '" + spec +
                                "' must be a positive integer");
  {
    std::lock_guard<std::mutex> lock(g_plan_mu);
    g_plan[static_cast<size_t>(idx)] = count;
  }
  detail::faults_active.store(true, std::memory_order_relaxed);
}

bool arm_faults_from_env(std::string* error) {
  const char* env = std::getenv("DEEPMC_FAULTS");
  if (env == nullptr || *env == '\0') return true;
  const std::string value(env);
  // Validate the whole list before arming anything.
  std::vector<std::string> specs;
  size_t start = 0;
  while (start <= value.size()) {
    size_t comma = value.find(',', start);
    if (comma == std::string::npos) comma = value.size();
    std::string spec = value.substr(start, comma - start);
    if (!spec.empty()) specs.push_back(std::move(spec));
    start = comma + 1;
  }
  for (const std::string& spec : specs) {
    const size_t colon = spec.rfind(':');
    if (colon == std::string::npos || colon == 0 ||
        colon + 1 == spec.size() ||
        fault_point_index(spec.substr(0, colon)) < 0) {
      if (error != nullptr)
        *error = "DEEPMC_FAULTS: bad spec '" + spec + "'";
      return false;
    }
  }
  try {
    for (const std::string& spec : specs) arm_fault(spec);
  } catch (const std::invalid_argument& e) {
    if (error != nullptr) *error = std::string("DEEPMC_FAULTS: ") + e.what();
    return false;
  }
  return true;
}

void clear_faults() {
  {
    std::lock_guard<std::mutex> lock(g_plan_mu);
    g_plan.fill(0);
  }
  detail::faults_active.store(false, std::memory_order_relaxed);
}

bool any_faults_armed() {
  return detail::faults_active.load(std::memory_order_relaxed);
}

FaultScope::FaultScope() {
  std::lock_guard<std::mutex> lock(g_plan_mu);
  for (size_t i = 0; i < detail::kMaxFaultPoints; ++i) {
    const int64_t count = g_plan[i];
    armed_pt_[i] = count > 0;
    remaining_[i].store(count, std::memory_order_relaxed);
    if (count > 0) armed_any_ = true;
  }
}

void FaultScope::set_cancel(CancelToken token) {
  token_ = std::move(token);
  has_token_ = true;
}

std::string FaultScope::tripped_point() const {
  const int idx = tripped_idx_.load(std::memory_order_acquire);
  if (idx < 0) return {};
  return point_names()[static_cast<size_t>(idx)];
}

void FaultScope::hit(int idx, const char* name) {
  const auto i = static_cast<size_t>(idx);
  if (i >= detail::kMaxFaultPoints || !armed_pt_[i]) return;
  const int64_t prev = remaining_[i].fetch_sub(1, std::memory_order_relaxed);
  if (prev > 1) return;  // not yet the count-th hit
  int expected = -1;
  tripped_idx_.compare_exchange_strong(expected, idx,
                                       std::memory_order_acq_rel);
  obs::flight().record("fault.trip", obs::flight_kv("point", name));
  if (has_token_) token_.cancel(std::string("fault injected: ") + name);
  throw FaultInjected(name);
}

FaultActivation::FaultActivation(FaultScope* scope) : prev_(detail::tl_scope) {
  detail::tl_scope = scope;
}

FaultActivation::~FaultActivation() { detail::tl_scope = prev_; }

}  // namespace deepmc::support
