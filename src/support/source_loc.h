// Source locations attached to MIR instructions and checker reports.
//
// DeepMC reports bugs with the file name and line number of the offending
// operation (paper §4.3: "DeepMC maintains metadata associated with each
// trace entry. It includes the line numbers of the operations in a trace").
// Corpus modules set these to the file/line cited in the paper's Tables 3
// and 8 so that reports can be matched against the paper row-by-row.
#pragma once

#include <compare>
#include <cstdint>
#include <string>

namespace deepmc {

/// A (file, line) pair. `line == 0` means "unknown".
struct SourceLoc {
  std::string file;
  uint32_t line = 0;

  SourceLoc() = default;
  SourceLoc(std::string file_, uint32_t line_)
      : file(std::move(file_)), line(line_) {}

  [[nodiscard]] bool valid() const { return line != 0 || !file.empty(); }

  /// Render as "file:line" (or "<unknown>").
  [[nodiscard]] std::string str() const {
    if (!valid()) return "<unknown>";
    return file + ":" + std::to_string(line);
  }

  friend auto operator<=>(const SourceLoc&, const SourceLoc&) = default;
};

}  // namespace deepmc
