// Deterministic step budgets and cooperative cancellation.
//
// The paper keeps DeepMC's analyses terminating by bounding loop
// iterations and inlining depth (§3.2); this header adds the driver-side
// enforcement: every stage charges work units against a Budget, and a
// pathological unit trips a BudgetExceeded instead of stalling the corpus
// run. Two rules keep reports byte-identical at any --jobs:
//
//  1. Budgets are per-invocation (one Budget per trace root, per DSA run,
//     per enumeration), never shared across parallel subtasks — a shared
//     counter would make the trip point depend on scheduling.
//  2. The wall-clock watchdog only *cancels* (via CancelToken); it never
//     decides a unit's classification on its own, so timing noise cannot
//     change what a report says about an unaffected unit.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>
#include <utility>

#include "obs/flight.h"

namespace deepmc::support {

/// Thrown by Budget::charge when a deterministic step budget runs out.
/// `stage` names the meter that tripped (e.g. "trace.steps", "dsa.steps",
/// "enum.images", "interp.steps").
class BudgetExceeded : public std::runtime_error {
 public:
  BudgetExceeded(std::string stage, uint64_t limit)
      : std::runtime_error("budget exceeded: " + stage + " (limit " +
                           std::to_string(limit) + ")"),
        stage_(std::move(stage)),
        limit_(limit) {}

  [[nodiscard]] const std::string& stage() const { return stage_; }
  [[nodiscard]] uint64_t limit() const { return limit_; }

 private:
  std::string stage_;
  uint64_t limit_;
};

/// Thrown by Budget::charge when the attached CancelToken fires. The
/// reason is the token's (first-cancel-wins) reason string.
class CancelledError : public std::runtime_error {
 public:
  explicit CancelledError(std::string reason)
      : std::runtime_error("cancelled: " + reason),
        reason_(std::move(reason)) {}

  [[nodiscard]] const std::string& reason() const { return reason_; }

 private:
  std::string reason_;
};

/// Cooperative cancellation flag shared between the driver and every stage
/// it fans out. Copyable; all copies observe the same flag. The first
/// cancel() wins the reason; later calls are no-ops. An optional armed
/// deadline turns check() into the wall-clock watchdog: the first check
/// past the deadline cancels the token — no timer thread, no signals.
class CancelToken {
 public:
  CancelToken() : state_(std::make_shared<State>()) {}

  void cancel(const std::string& reason) const {
    bool expected = false;
    if (state_->cancelled.compare_exchange_strong(expected, true,
                                                  std::memory_order_acq_rel)) {
      // Only the CAS winner writes the reason; readers gate on the
      // release/acquire pair on reason_set before touching the string.
      state_->reason = reason;
      state_->reason_set.store(true, std::memory_order_release);
      // First-cancel-wins is exactly the moment a post-mortem wants
      // pinned: the watchdog firing (or a fault's cancel) lands in the
      // flight recorder once, with the winning reason.
      obs::flight().record("cancel", obs::flight_kv("reason", reason));
    }
  }

  [[nodiscard]] bool cancelled() const {
    return state_->cancelled.load(std::memory_order_acquire);
  }

  /// Reason for the cancellation; empty until the winner publishes it.
  [[nodiscard]] std::string reason() const {
    if (!state_->reason_set.load(std::memory_order_acquire)) return {};
    return state_->reason;
  }

  /// Arm the wall-clock watchdog: check() calls at or past the deadline
  /// cancel the token with a "wall-clock budget exceeded" reason.
  void arm_deadline(std::chrono::milliseconds budget) const {
    arm_deadline_at(std::chrono::steady_clock::now() + budget);
  }

  /// Absolute-deadline variant: lets a caller holding one request-wide
  /// deadline (serve per-request timeouts) arm successive tokens against
  /// the same wall-clock point, so retries never extend the total bound.
  void arm_deadline_at(std::chrono::steady_clock::time_point deadline) const {
    state_->deadline = deadline;
    state_->deadline_armed.store(true, std::memory_order_release);
  }

  /// Throws CancelledError if the token has fired (or the armed deadline
  /// has passed). Cheap when it hasn't; callers amortise it anyway.
  void check() const {
    if (cancelled()) throw CancelledError(reason());
    if (state_->deadline_armed.load(std::memory_order_acquire) &&
        std::chrono::steady_clock::now() >= state_->deadline) {
      cancel("wall-clock budget exceeded");
      throw CancelledError(reason());
    }
  }

 private:
  struct State {
    std::atomic<bool> cancelled{false};
    std::atomic<bool> reason_set{false};
    std::string reason;
    std::atomic<bool> deadline_armed{false};
    std::chrono::steady_clock::time_point deadline{};
  };
  std::shared_ptr<State> state_;
};

/// A per-invocation work meter. Not thread-safe by design: each parallel
/// subtask gets its own Budget so trip points are a pure function of the
/// work done, not of scheduling. Default-constructed budgets are
/// unlimited and still propagate cancellation if given a token.
class Budget {
 public:
  Budget() = default;

  /// `limit` == 0 means unlimited.
  Budget(std::string stage, uint64_t limit) : stage_(std::move(stage)) {
    set_limit(limit);
  }

  void set_limit(uint64_t limit) {
    limit_ = limit;
    remaining_ = limit == 0 ? kUnlimited : limit;
  }

  void set_cancel(CancelToken token) {
    token_ = std::move(token);
    has_token_ = true;
  }

  [[nodiscard]] bool limited() const { return remaining_ != kUnlimited; }
  [[nodiscard]] uint64_t limit() const { return limit_; }
  [[nodiscard]] uint64_t used() const { return used_; }
  [[nodiscard]] const std::string& stage() const { return stage_; }

  /// Charge `n` units of work. Throws BudgetExceeded when the meter runs
  /// out and CancelledError when the attached token has fired. The cancel
  /// and deadline checks are amortised (every kPollMask+1 charges) so the
  /// hot path is a decrement and a branch.
  void charge(uint64_t n = 1) {
    used_ += n;
    if ((used_ & kPollMask) < n) poll_slow();
    if (remaining_ == kUnlimited) return;
    if (n > remaining_) {
      remaining_ = 0;
      throw BudgetExceeded(stage_, limit_);
    }
    remaining_ -= n;
  }

  /// Immediate cancellation check (used at coarse boundaries where the
  /// amortised poll in charge() is too lazy, e.g. per trace root).
  void check_cancel() const {
    if (has_token_) token_.check();
  }

 private:
  static constexpr uint64_t kUnlimited = ~uint64_t{0};
  static constexpr uint64_t kPollMask = 0xFFF;  // poll every 4096 charges

  void poll_slow() const;  // cold path: deadline poll + cancel check

  std::string stage_ = "budget";
  uint64_t limit_ = 0;
  uint64_t remaining_ = kUnlimited;
  uint64_t used_ = 0;
  bool has_token_ = false;
  CancelToken token_;
};

}  // namespace deepmc::support
