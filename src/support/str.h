// Small string utilities shared across the project.
//
// GCC 12 does not ship std::format, so formatting goes through a printf-style
// helper with a compile-time-checked attribute.
#pragma once

#include <cstdarg>
#include <cstdio>
#include <string>
#include <string_view>
#include <vector>

namespace deepmc {

/// printf-style formatting into a std::string.
[[gnu::format(printf, 1, 2)]] inline std::string strformat(const char* fmt,
                                                           ...) {
  va_list ap;
  va_start(ap, fmt);
  va_list ap2;
  va_copy(ap2, ap);
  const int n = std::vsnprintf(nullptr, 0, fmt, ap);
  va_end(ap);
  std::string out;
  if (n > 0) {
    out.resize(static_cast<size_t>(n));
    std::vsnprintf(out.data(), out.size() + 1, fmt, ap2);
  }
  va_end(ap2);
  return out;
}

/// Split `s` on `sep`, dropping empty pieces when `keep_empty` is false.
inline std::vector<std::string_view> split(std::string_view s, char sep,
                                           bool keep_empty = false) {
  std::vector<std::string_view> out;
  size_t start = 0;
  for (size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == sep) {
      std::string_view piece = s.substr(start, i - start);
      if (keep_empty || !piece.empty()) out.push_back(piece);
      start = i + 1;
    }
  }
  return out;
}

inline std::string_view trim(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t' ||
                        s.front() == '\r' || s.front() == '\n'))
    s.remove_prefix(1);
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t' ||
                        s.back() == '\r' || s.back() == '\n'))
    s.remove_suffix(1);
  return s;
}

inline bool starts_with(std::string_view s, std::string_view prefix) {
  return s.substr(0, prefix.size()) == prefix;
}

}  // namespace deepmc
