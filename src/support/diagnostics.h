// Diagnostic engine: collects checker warnings/errors with locations.
//
// Both the static checker (§4.3) and the dynamic checker (§4.4) report
// WARNINGs through this engine; benches and tests query the collected set.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "support/source_loc.h"

namespace deepmc {

enum class Severity : uint8_t { kNote, kWarning, kError };

const char* severity_name(Severity s);

struct Diagnostic {
  Severity severity = Severity::kWarning;
  SourceLoc loc;
  std::string rule;     ///< machine-readable rule id, e.g. "strict.unflushed-write"
  std::string message;  ///< human-readable explanation

  [[nodiscard]] std::string str() const;
};

/// Accumulates diagnostics. Not thread-safe; the dynamic runtime wraps it
/// with its own lock.
class DiagnosticEngine {
 public:
  void report(Severity sev, SourceLoc loc, std::string rule,
              std::string message) {
    diags_.push_back(
        {sev, std::move(loc), std::move(rule), std::move(message)});
  }

  void warn(SourceLoc loc, std::string rule, std::string message) {
    report(Severity::kWarning, std::move(loc), std::move(rule),
           std::move(message));
  }

  [[nodiscard]] const std::vector<Diagnostic>& diagnostics() const {
    return diags_;
  }
  [[nodiscard]] size_t warning_count() const;
  [[nodiscard]] size_t error_count() const;
  [[nodiscard]] bool empty() const { return diags_.empty(); }
  void clear() { diags_.clear(); }

  /// All diagnostics whose rule id matches `rule` exactly.
  [[nodiscard]] std::vector<const Diagnostic*> by_rule(
      std::string_view rule) const;

  /// All diagnostics at a given file:line.
  [[nodiscard]] std::vector<const Diagnostic*> at(std::string_view file,
                                                  uint32_t line) const;

  void print(std::ostream& os) const;

 private:
  std::vector<Diagnostic> diags_;
};

}  // namespace deepmc
