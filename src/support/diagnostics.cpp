#include "support/diagnostics.h"

#include <algorithm>
#include <ostream>

namespace deepmc {

const char* severity_name(Severity s) {
  switch (s) {
    case Severity::kNote:
      return "note";
    case Severity::kWarning:
      return "warning";
    case Severity::kError:
      return "error";
  }
  return "unknown";
}

std::string Diagnostic::str() const {
  return loc.str() + ": " + severity_name(severity) + " [" + rule + "] " +
         message;
}

size_t DiagnosticEngine::warning_count() const {
  return static_cast<size_t>(
      std::count_if(diags_.begin(), diags_.end(), [](const Diagnostic& d) {
        return d.severity == Severity::kWarning;
      }));
}

size_t DiagnosticEngine::error_count() const {
  return static_cast<size_t>(
      std::count_if(diags_.begin(), diags_.end(), [](const Diagnostic& d) {
        return d.severity == Severity::kError;
      }));
}

std::vector<const Diagnostic*> DiagnosticEngine::by_rule(
    std::string_view rule) const {
  std::vector<const Diagnostic*> out;
  for (const Diagnostic& d : diags_)
    if (d.rule == rule) out.push_back(&d);
  return out;
}

std::vector<const Diagnostic*> DiagnosticEngine::at(std::string_view file,
                                                    uint32_t line) const {
  std::vector<const Diagnostic*> out;
  for (const Diagnostic& d : diags_)
    if (d.loc.file == file && d.loc.line == line) out.push_back(&d);
  return out;
}

void DiagnosticEngine::print(std::ostream& os) const {
  for (const Diagnostic& d : diags_) os << d.str() << "\n";
}

}  // namespace deepmc
