// Lightweight counters and timing helpers for benches and the PM substrate.
#pragma once

#include <chrono>
#include <cstdint>
#include <ctime>

namespace deepmc {

/// Monotonic wall-clock stopwatch.
class Stopwatch {
 public:
  Stopwatch() { reset(); }
  void reset() { start_ = std::chrono::steady_clock::now(); }
  [[nodiscard]] double seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_)
        .count();
  }
  [[nodiscard]] double millis() const { return seconds() * 1e3; }

 private:
  std::chrono::steady_clock::time_point start_;
};

/// Process-CPU-time stopwatch: immune to scheduler noise on shared
/// machines, which is what the throughput benches need.
class CpuStopwatch {
 public:
  CpuStopwatch() { reset(); }
  void reset() { start_ = now(); }
  [[nodiscard]] double seconds() const { return now() - start_; }

 private:
  static double now() {
    timespec ts{};
    clock_gettime(CLOCK_PROCESS_CPUTIME_ID, &ts);
    return static_cast<double>(ts.tv_sec) +
           static_cast<double>(ts.tv_nsec) * 1e-9;
  }
  double start_;
};

/// Streaming mean/min/max accumulator.
struct Accumulator {
  uint64_t n = 0;
  double sum = 0, min = 0, max = 0;

  void add(double x) {
    if (n == 0) {
      min = max = x;
    } else {
      if (x < min) min = x;
      if (x > max) max = x;
    }
    sum += x;
    ++n;
  }
  [[nodiscard]] double mean() const { return n ? sum / static_cast<double>(n) : 0.0; }
};

}  // namespace deepmc
