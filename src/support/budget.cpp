#include "support/budget.h"

namespace deepmc::support {

// Out of line on purpose: this is the amortised cold path of
// Budget::charge (once per 4096 charges); keeping it out of the header
// keeps the inlined hot path to a decrement and a branch.
void Budget::poll_slow() const { check_cancel(); }

}  // namespace deepmc::support
