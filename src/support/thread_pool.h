// Work-stealing thread pool shared by the analysis driver, benches and
// tests.
//
// Topology: one injection queue for external submissions (FIFO) plus one
// deque per worker. A worker pops its own deque from the back (LIFO — the
// freshest task has the warmest cache), drains the injection queue from
// the front, and otherwise steals from a sibling's deque front (FIFO —
// the stalest task is the one its owner will reach last). Tasks submitted
// from *inside* a worker go to that worker's own deque, so fork-join style
// nesting stays mostly thread-local.
//
// Blocking on a subtask from inside a worker would deadlock a classic
// pool; here `await()` lends the blocked thread back to the pool: it keeps
// executing pending tasks until the future it waits for is ready. The
// analysis driver uses exactly this to fan per-function work out of a
// per-module task.
//
// Degenerate sizes are first-class: a pool of 0 threads executes every
// task inline at submit() (deterministic serial mode — `deepmc --jobs 1`
// maps here), and a pool of 1 thread preserves FIFO order for external
// submissions.
//
// Exceptions thrown by a task are captured into the task's future
// (std::packaged_task semantics) and rethrown at `get()` / `await()` in
// the submitting thread; they never tear down a worker.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

namespace deepmc::support {

class ThreadPool {
 public:
  /// std::thread::hardware_concurrency(), never less than 1.
  static size_t default_concurrency();

  /// `threads == 0` creates an inline (serial) pool: submit() runs the
  /// task on the calling thread before returning.
  explicit ThreadPool(size_t threads = default_concurrency());
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] size_t worker_count() const { return workers_.size(); }

  /// Schedule `fn` and return a future for its result. Thread-safe; may be
  /// called from worker threads (the task then goes to the calling
  /// worker's own deque).
  template <typename F, typename R = std::invoke_result_t<std::decay_t<F>>>
  std::future<R> submit(F&& fn) {
    auto task =
        std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> fut = task->get_future();
    enqueue([task] { (*task)(); });
    return fut;
  }

  /// Execute one pending task on the calling thread, if any. Returns false
  /// when every queue is empty.
  bool try_run_one();

  /// Wait for `fut`, executing pending pool tasks on this thread while it
  /// is not ready (so waiting inside a worker cannot deadlock the pool).
  /// Rethrows the task's exception like std::future::get().
  template <typename R>
  R await(std::future<R> fut) {
    while (fut.wait_for(std::chrono::seconds(0)) !=
           std::future_status::ready) {
      if (!try_run_one()) std::this_thread::yield();
    }
    return fut.get();
  }

 private:
  struct Queue {
    std::mutex mu;
    std::deque<std::function<void()>> tasks;
  };

  void enqueue(std::function<void()> task);
  bool pop_task(std::function<void()>& out, size_t self);
  void worker_loop(size_t index);

  static bool pop_back(Queue& q, std::function<void()>& out);
  static bool pop_front(Queue& q, std::function<void()>& out);

  std::vector<std::unique_ptr<Queue>> queues_;  ///< one per worker
  Queue inject_;                                ///< external submissions
  std::vector<std::thread> workers_;

  std::mutex sleep_mu_;
  std::condition_variable sleep_cv_;
  std::atomic<size_t> pending_{0};  ///< queued, not yet dequeued
  std::atomic<bool> stop_{false};
};

}  // namespace deepmc::support
