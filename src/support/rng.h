// Deterministic pseudo-random number generation for workload generators.
//
// Benchmarks must be reproducible run-to-run, so every workload generator
// takes an explicit seed and uses this splitmix64/xoshiro-style generator
// rather than std::random_device.
#pragma once

#include <cstdint>

namespace deepmc {

/// splitmix64: tiny, fast, and statistically solid for workload synthesis.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ull) : state_(seed) {}

  uint64_t next() {
    uint64_t z = (state_ += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }

  /// Uniform integer in [0, bound). `bound` must be > 0.
  uint64_t below(uint64_t bound) { return next() % bound; }

  /// Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>(next() >> 11) * (1.0 / 9007199254740992.0);
  }

  /// Bernoulli trial with probability `p`.
  bool chance(double p) { return uniform() < p; }

  /// Zipfian-ish skewed key pick in [0, n): 80/20 hot-set approximation,
  /// good enough for YCSB-style key popularity without a full Zipf table.
  uint64_t skewed(uint64_t n) {
    if (n <= 1) return 0;
    if (chance(0.8)) return below(n / 5 + 1);  // hot 20%
    return below(n);
  }

 private:
  uint64_t state_;
};

}  // namespace deepmc
