// Named fault-injection points for resilience testing.
//
// A fault point is a named site in the pipeline that can be forced to
// fail on demand: `DEEPMC_FAULTPOINT("dsa.node-alloc")` compiles to a
// single relaxed atomic load and a never-taken branch when no fault is
// armed, and throws FaultInjected on the count-th hit when armed via
// --inject-fault name:count or DEEPMC_FAULTS=name:count[,name:count].
//
// Determinism contract: the armed plan is global, but countdowns live in
// per-unit FaultScope snapshots installed thread-locally (FaultActivation)
// inside every driver subtask. "name:count" therefore means "the count-th
// hit *within each analysis unit* trips" — which unit fails is a pure
// function of the inputs, never of --jobs scheduling. A trip is sticky:
// once a scope has tripped, every later hit in that scope throws too, so
// sibling subtasks of the failing unit drain quickly.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "support/budget.h"

namespace deepmc::support {

/// Thrown at an armed fault point. `point` is the registered name.
class FaultInjected : public std::runtime_error {
 public:
  explicit FaultInjected(std::string point)
      : std::runtime_error("fault injected: " + point),
        point_(std::move(point)) {}

  [[nodiscard]] const std::string& point() const { return point_; }

 private:
  std::string point_;
};

/// The canonical registry, in stable order. Adding a point means adding
/// its name here (faultpoint.cpp) and placing a DEEPMC_FAULTPOINT at the
/// site; tests iterate this list to prove every point has coverage.
[[nodiscard]] const std::vector<std::string>& registered_fault_points();

/// Index of `name` in registered_fault_points(), or -1 if unknown.
[[nodiscard]] int fault_point_index(std::string_view name);

/// Arm one fault from a "name:count" spec (count >= 1). Throws
/// std::invalid_argument on an unknown name or malformed spec.
void arm_fault(const std::string& spec);

/// Arm every comma-separated spec in $DEEPMC_FAULTS. Returns false (with
/// a message in *error) on a malformed value; arms nothing in that case.
bool arm_faults_from_env(std::string* error = nullptr);

/// Disarm everything (tests use this between cases).
void clear_faults();

/// True if any fault is currently armed.
[[nodiscard]] bool any_faults_armed();

namespace detail {
inline constexpr size_t kMaxFaultPoints = 16;
extern std::atomic<bool> faults_active;
void fault_hit(int idx, const char* name);
}  // namespace detail

/// Per-unit snapshot of the armed plan. Shared by all subtasks of one
/// analysis unit; the countdown is atomic so parallel trace roots race
/// on *when* the trip happens but not on *whether* this unit trips.
class FaultScope {
 public:
  /// Snapshots the global armed plan at construction.
  FaultScope();

  FaultScope(const FaultScope&) = delete;
  FaultScope& operator=(const FaultScope&) = delete;

  /// Couple a cancel token: a trip cancels it so sibling subtasks of the
  /// same unit bail out at their next budget poll.
  void set_cancel(CancelToken token);

  /// True if this scope snapshot has any armed point (cheap gate).
  [[nodiscard]] bool armed() const { return armed_any_; }

  /// Name of the point that tripped in this scope, or "" if none.
  [[nodiscard]] std::string tripped_point() const;

  /// Called from DEEPMC_FAULTPOINT via detail::fault_hit. Throws
  /// FaultInjected when the countdown for `idx` reaches zero.
  void hit(int idx, const char* name);

 private:
  std::array<std::atomic<int64_t>, detail::kMaxFaultPoints> remaining_{};
  std::array<bool, detail::kMaxFaultPoints> armed_pt_{};
  std::atomic<int> tripped_idx_{-1};
  bool armed_any_ = false;
  bool has_token_ = false;
  CancelToken token_;
};

/// RAII: installs `scope` as this thread's active fault scope for the
/// duration (restoring the previous one on destruction). Null is allowed
/// and deactivates fault injection on the thread.
class FaultActivation {
 public:
  explicit FaultActivation(FaultScope* scope);
  ~FaultActivation();

  FaultActivation(const FaultActivation&) = delete;
  FaultActivation& operator=(const FaultActivation&) = delete;

 private:
  FaultScope* prev_;
};

}  // namespace deepmc::support

/// The site macro. Inactive cost: one relaxed load + an untaken branch.
/// The per-site index lookup is a function-local static, resolved once.
#define DEEPMC_FAULTPOINT(name)                                       \
  do {                                                                \
    if (::deepmc::support::detail::faults_active.load(                \
            std::memory_order_relaxed)) {                             \
      static const int deepmc_fp_idx_ =                               \
          ::deepmc::support::fault_point_index(name);                 \
      ::deepmc::support::detail::fault_hit(deepmc_fp_idx_, name);     \
    }                                                                 \
  } while (0)
