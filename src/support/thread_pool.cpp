#include "support/thread_pool.h"

#include <string>

#include "obs/metrics.h"
#include "obs/tracer.h"

namespace deepmc::support {

namespace {

// All pool metrics are kVolatile: how tasks distribute over workers (and
// therefore steals, queue waits, per-worker busy time) depends on
// scheduling, never on the analyzed inputs.

obs::Counter& tasks_submitted() {
  static obs::Counter c = obs::registry().counter(
      "pool.tasks_submitted_total", obs::Volatility::kVolatile,
      "tasks handed to the pool (external + nested submissions)");
  return c;
}

obs::Counter& tasks_inline() {
  static obs::Counter c = obs::registry().counter(
      "pool.tasks_inline_total", obs::Volatility::kVolatile,
      "tasks executed inline by a zero-thread (serial) pool");
  return c;
}

obs::Counter& tasks_executed() {
  static obs::Counter c = obs::registry().counter(
      "pool.tasks_executed_total", obs::Volatility::kVolatile,
      "tasks dequeued and run to completion");
  return c;
}

obs::Counter& tasks_stolen() {
  static obs::Counter c = obs::registry().counter(
      "pool.tasks_stolen_total", obs::Volatility::kVolatile,
      "tasks taken from a sibling worker's deque");
  return c;
}

obs::Histogram& queue_wait_us() {
  static obs::Histogram h = obs::registry().histogram(
      "pool.queue_wait_us", obs::Volatility::kVolatile,
      "microseconds a task spent queued before running",
      obs::time_buckets_us());
  return h;
}

obs::Histogram& task_run_us() {
  static obs::Histogram h = obs::registry().histogram(
      "pool.task_run_us", obs::Volatility::kVolatile,
      "microseconds a task spent running", obs::time_buckets_us());
  return h;
}

/// Busy-time counter for the calling thread, keyed by its stable label
/// (tid 0 = main/external, workers carry their pool index).
obs::Counter worker_busy_counter() {
  const uint32_t tid = obs::thread_tid();
  const std::string name =
      tid == 0 ? "pool.worker_busy_us.main"
               : "pool.worker_busy_us.worker-" + std::to_string(tid - 1);
  return obs::registry().counter(
      name, obs::Volatility::kVolatile,
      "microseconds this thread spent running pool tasks");
}

/// Wrap a task so its queue wait, run time and span are recorded. Only
/// installed when observability is enabled at submission time.
std::function<void()> instrument_task(std::function<void()> task) {
  const auto enqueued = std::chrono::steady_clock::now();
  return [task = std::move(task), enqueued] {
    const auto started = std::chrono::steady_clock::now();
    const double wait_us =
        std::chrono::duration<double, std::micro>(started - enqueued).count();
    queue_wait_us().observe(static_cast<uint64_t>(wait_us));
    tasks_executed().inc();
    {
      obs::Span span("pool.task", "pool",
                     obs::span_arg_num("wait_us", wait_us));
      task();
    }
    const double run_us = std::chrono::duration<double, std::micro>(
                              std::chrono::steady_clock::now() - started)
                              .count();
    task_run_us().observe(static_cast<uint64_t>(run_us));
    worker_busy_counter().inc(static_cast<uint64_t>(run_us));
  };
}

/// Identifies the pool (and worker slot) the current thread belongs to, so
/// submit() can route nested tasks to the local deque.
struct WorkerTls {
  const ThreadPool* pool = nullptr;
  size_t index = 0;
};
thread_local WorkerTls tls;

constexpr size_t kNotAWorker = static_cast<size_t>(-1);

}  // namespace

size_t ThreadPool::default_concurrency() {
  const unsigned hc = std::thread::hardware_concurrency();
  return hc == 0 ? 1 : hc;
}

ThreadPool::ThreadPool(size_t threads) {
  static obs::Gauge workers_gauge = obs::registry().gauge(
      "pool.workers", obs::Volatility::kVolatile,
      "worker threads in the most recently created pool (0 = inline)");
  workers_gauge.set(threads);
  queues_.reserve(threads);
  for (size_t i = 0; i < threads; ++i)
    queues_.push_back(std::make_unique<Queue>());
  workers_.reserve(threads);
  for (size_t i = 0; i < threads; ++i)
    workers_.emplace_back([this, i] { worker_loop(i); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(sleep_mu_);
    stop_.store(true);
  }
  sleep_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

bool ThreadPool::pop_back(Queue& q, std::function<void()>& out) {
  std::lock_guard<std::mutex> lock(q.mu);
  if (q.tasks.empty()) return false;
  out = std::move(q.tasks.back());
  q.tasks.pop_back();
  return true;
}

bool ThreadPool::pop_front(Queue& q, std::function<void()>& out) {
  std::lock_guard<std::mutex> lock(q.mu);
  if (q.tasks.empty()) return false;
  out = std::move(q.tasks.front());
  q.tasks.pop_front();
  return true;
}

void ThreadPool::enqueue(std::function<void()> task) {
  if (obs::enabled()) {
    tasks_submitted().inc();
    task = instrument_task(std::move(task));
  }
  if (workers_.empty()) {
    if (obs::enabled()) tasks_inline().inc();
    task();  // inline (serial) pool
    return;
  }
  Queue* q;
  if (tls.pool == this) {
    // Nested submission: keep fork-join work local to this worker.
    q = queues_[tls.index].get();
    std::lock_guard<std::mutex> lock(q->mu);
    q->tasks.push_back(std::move(task));
  } else {
    q = &inject_;
    std::lock_guard<std::mutex> lock(q->mu);
    q->tasks.push_back(std::move(task));
  }
  {
    std::lock_guard<std::mutex> lock(sleep_mu_);
    pending_.fetch_add(1, std::memory_order_relaxed);
  }
  sleep_cv_.notify_one();
}

bool ThreadPool::pop_task(std::function<void()>& out, size_t self) {
  if (self != kNotAWorker && pop_back(*queues_[self], out)) {
    pending_.fetch_sub(1, std::memory_order_relaxed);
    return true;
  }
  if (pop_front(inject_, out)) {
    pending_.fetch_sub(1, std::memory_order_relaxed);
    return true;
  }
  const size_t n = queues_.size();
  const size_t start = self == kNotAWorker ? 0 : self + 1;
  for (size_t k = 0; k < n; ++k) {
    const size_t victim = (start + k) % n;
    if (victim == self) continue;
    if (pop_front(*queues_[victim], out)) {
      pending_.fetch_sub(1, std::memory_order_relaxed);
      if (obs::enabled()) tasks_stolen().inc();
      return true;
    }
  }
  return false;
}

bool ThreadPool::try_run_one() {
  const size_t self = tls.pool == this ? tls.index : kNotAWorker;
  std::function<void()> task;
  if (!pop_task(task, self)) return false;
  task();
  return true;
}

void ThreadPool::worker_loop(size_t index) {
  tls.pool = this;
  tls.index = index;
  // Stable worker identity for spans, per-worker metrics and TSan/trace
  // attribution: worker i is obs tid i+1 (tid 0 = the main thread).
  obs::set_thread_label(static_cast<uint32_t>(index) + 1,
                        "worker-" + std::to_string(index));
  std::function<void()> task;
  for (;;) {
    if (pop_task(task, index)) {
      task();
      task = nullptr;  // release captures before sleeping
      continue;
    }
    std::unique_lock<std::mutex> lock(sleep_mu_);
    sleep_cv_.wait(lock, [&] {
      return stop_.load(std::memory_order_relaxed) ||
             pending_.load(std::memory_order_relaxed) > 0;
    });
    // Drain remaining tasks before exiting so futures submitted just
    // before destruction still complete.
    if (stop_.load(std::memory_order_relaxed) &&
        pending_.load(std::memory_order_relaxed) == 0)
      return;
  }
}

}  // namespace deepmc::support
