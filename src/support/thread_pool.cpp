#include "support/thread_pool.h"

namespace deepmc::support {

namespace {

/// Identifies the pool (and worker slot) the current thread belongs to, so
/// submit() can route nested tasks to the local deque.
struct WorkerTls {
  const ThreadPool* pool = nullptr;
  size_t index = 0;
};
thread_local WorkerTls tls;

constexpr size_t kNotAWorker = static_cast<size_t>(-1);

}  // namespace

size_t ThreadPool::default_concurrency() {
  const unsigned hc = std::thread::hardware_concurrency();
  return hc == 0 ? 1 : hc;
}

ThreadPool::ThreadPool(size_t threads) {
  queues_.reserve(threads);
  for (size_t i = 0; i < threads; ++i)
    queues_.push_back(std::make_unique<Queue>());
  workers_.reserve(threads);
  for (size_t i = 0; i < threads; ++i)
    workers_.emplace_back([this, i] { worker_loop(i); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(sleep_mu_);
    stop_.store(true);
  }
  sleep_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

bool ThreadPool::pop_back(Queue& q, std::function<void()>& out) {
  std::lock_guard<std::mutex> lock(q.mu);
  if (q.tasks.empty()) return false;
  out = std::move(q.tasks.back());
  q.tasks.pop_back();
  return true;
}

bool ThreadPool::pop_front(Queue& q, std::function<void()>& out) {
  std::lock_guard<std::mutex> lock(q.mu);
  if (q.tasks.empty()) return false;
  out = std::move(q.tasks.front());
  q.tasks.pop_front();
  return true;
}

void ThreadPool::enqueue(std::function<void()> task) {
  if (workers_.empty()) {
    task();  // inline (serial) pool
    return;
  }
  Queue* q;
  if (tls.pool == this) {
    // Nested submission: keep fork-join work local to this worker.
    q = queues_[tls.index].get();
    std::lock_guard<std::mutex> lock(q->mu);
    q->tasks.push_back(std::move(task));
  } else {
    q = &inject_;
    std::lock_guard<std::mutex> lock(q->mu);
    q->tasks.push_back(std::move(task));
  }
  {
    std::lock_guard<std::mutex> lock(sleep_mu_);
    pending_.fetch_add(1, std::memory_order_relaxed);
  }
  sleep_cv_.notify_one();
}

bool ThreadPool::pop_task(std::function<void()>& out, size_t self) {
  if (self != kNotAWorker && pop_back(*queues_[self], out)) {
    pending_.fetch_sub(1, std::memory_order_relaxed);
    return true;
  }
  if (pop_front(inject_, out)) {
    pending_.fetch_sub(1, std::memory_order_relaxed);
    return true;
  }
  const size_t n = queues_.size();
  const size_t start = self == kNotAWorker ? 0 : self + 1;
  for (size_t k = 0; k < n; ++k) {
    const size_t victim = (start + k) % n;
    if (victim == self) continue;
    if (pop_front(*queues_[victim], out)) {
      pending_.fetch_sub(1, std::memory_order_relaxed);
      return true;
    }
  }
  return false;
}

bool ThreadPool::try_run_one() {
  const size_t self = tls.pool == this ? tls.index : kNotAWorker;
  std::function<void()> task;
  if (!pop_task(task, self)) return false;
  task();
  return true;
}

void ThreadPool::worker_loop(size_t index) {
  tls.pool = this;
  tls.index = index;
  std::function<void()> task;
  for (;;) {
    if (pop_task(task, index)) {
      task();
      task = nullptr;  // release captures before sleeping
      continue;
    }
    std::unique_lock<std::mutex> lock(sleep_mu_);
    sleep_cv_.wait(lock, [&] {
      return stop_.load(std::memory_order_relaxed) ||
             pending_.load(std::memory_order_relaxed) > 0;
    });
    // Drain remaining tasks before exiting so futures submitted just
    // before destruction still complete.
    if (stop_.load(std::memory_order_relaxed) &&
        pending_.load(std::memory_order_relaxed) == 0)
      return;
  }
}

}  // namespace deepmc::support
