// `deepmc-load --serve-connect`: drive a running `deepmc serve` daemon
// with a deterministic multi-client analyze storm, through the retrying
// ServeClient (so sheds and transient faults are absorbed the way a real
// fleet client would absorb them).
//
// Each worker thread owns one connection and walks the same deterministic
// workload stream the in-process engine uses — op.key (hot-set or
// Zipfian-skewed) picks which of `programs` generated MIR programs to
// resubmit. Responses are checked for self-consistency: every response
// for program i must be byte-identical to the first one seen for i, which
// under the daemon's byte-identity contract means identical to a one-shot
// run — at any --jobs, cold or warm, shed and retried or not.
#pragma once

#include <cstdint>
#include <string>

#include "load/workload.h"
#include "serve/client.h"

namespace deepmc::load {

struct ServeLoadConfig {
  std::string target;  ///< daemon socket path or host:port
  /// threads/seed/keys/zipf_s of `spec` shape the request stream;
  /// ops_per_thread is the request count per worker.
  WorkloadSpec spec;
  uint64_t programs = 8;    ///< distinct generated programs cycled by key
  uint64_t deadline_ms = 0; ///< per-request deadline header (0 = none)
  serve::RetryPolicy retry;
};

struct ServeLoadResult {
  uint64_t requests = 0;    ///< logical requests issued
  uint64_t ok = 0;          ///< status-0 responses
  uint64_t failures = 0;    ///< retry budget exhausted or error status
  uint64_t mismatches = 0;  ///< byte-identity violations across responses
  uint64_t deadline_expired = 0;  ///< responses whose deadline fired
  // Client-side resilience counters, summed over workers.
  uint64_t attempts = 0;
  uint64_t retries = 0;
  uint64_t overloaded = 0;
  uint64_t reconnects = 0;
  double seconds = 0;
  double requests_per_sec = 0;
  std::string error;  ///< first failure detail, "" when none
  [[nodiscard]] bool passed() const {
    return failures == 0 && mismatches == 0;
  }
};

ServeLoadResult run_serve_load(const ServeLoadConfig& cfg);

}  // namespace deepmc::load
