// The load engine: N worker threads, each owning one KvShard of the chosen
// framework, replaying its deterministic op stream (workload.h) — the
// high-traffic harness behind `deepmc-load` and bench_load.
//
// Checker modes:
//   kOff       no instrumentation: the framework-only baseline.
//   kShared    all workers feed ONE scalable RuntimeChecker. Worker pools
//              have colliding offsets, so every worker tags its addresses
//              with a disjoint high-bits address-space id (AddrSpaceScope)
//              before they reach the checker — this is the concurrency/
//              overhead configuration Figure 12-style numbers come from.
//   kPerShard  one scalable checker per worker. Checks, sampling ticks and
//              therefore warning sets are deterministic per (seed, thread):
//              the mode the sampled-subset and determinism tests pin down.
//
// Each op runs inside an ambient strand (StrandScope); seeded bugs
// (shards.h) fire between ops. Crash-at-random-op: worker 0 arms the
// pool's fault injection near the chosen op index, catches PmFault, and
// feeds the crashed pool to the framework's recovery oracle (crash/),
// whose invariant re-binds the shard and verifies every acknowledged
// key-value pair survived (the in-flight op may land pre- or post-state).
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "load/workload.h"
#include "obs/metrics.h"
#include "runtime/dynamic_checker.h"

namespace deepmc::load {

enum class CheckerMode : uint8_t { kOff, kShared, kPerShard };

[[nodiscard]] const char* checker_mode_name(CheckerMode mode);

struct EngineConfig {
  std::string framework = "pmdk_mini";
  WorkloadSpec spec;
  CheckerMode checker = CheckerMode::kShared;
  rt::RtOptions rt_opts;     ///< scalable-checker tuning (shards/sample/buffer)
  bool seed_bugs = false;    ///< arm the deterministic deep-bug injectors
  int64_t crash_at = -1;     ///< worker 0 crashes near this op index (-1: off)
  bool crash_random = false; ///< pick crash_at from the seed instead
  uint64_t pool_bytes = 8ull << 20;  ///< per-worker pool size
  /// Time every op into per-worker put/get/del histograms (two clock
  /// reads per op; off by default so baseline throughput is untouched).
  /// Results land in EngineResult::latency and, when obs is enabled, the
  /// volatile "load.latency.<op>" registry histograms.
  bool measure_latency = false;
};

/// Fixed nanosecond buckets for the per-op latency histograms: 250ns ..
/// 1ms in doubling steps (shard ops are in-memory; checker modes shift
/// the distribution, not its scale).
[[nodiscard]] std::vector<uint64_t> latency_buckets_ns();

struct EngineResult {
  std::string framework;
  uint64_t total_ops = 0;  ///< ops executed to completion, all workers
  uint64_t gets = 0, puts = 0, dels = 0;
  double seconds = 0;      ///< wall clock over the op loop (shards prebuilt)
  double ops_per_sec = 0;
  uint64_t schedule_hash = 0;  ///< workload fingerprint (0 in duration mode)

  // --- checker findings (all modes but kOff) -----------------------------
  uint64_t races = 0, epoch_mismatches = 0;
  uint64_t redundant_flushes = 0, barrier_violations = 0;
  /// Canonical sorted-unique warning identities ("s<worker>|waw:<addr>",
  /// "epoch:<base>:<loc>", ...); the sampled-subset tests compare these
  /// across sample periods in kPerShard mode.
  std::vector<std::string> warning_keys;
  uint64_t strands = 0, fences = 0, tracked_words = 0;

  // --- per-op-type latency (EngineConfig::measure_latency) ---------------
  /// Indexed by OpKind (kGet/kPut/kDel); bounds = latency_buckets_ns().
  /// Empty (count == 0, no bounds) when measurement was off.
  std::array<obs::HistogramValue, 3> latency;
  bool latency_measured = false;

  // --- crash-recovery cycles ---------------------------------------------
  uint64_t crashes = 0;
  uint64_t recoveries_consistent = 0;
  uint64_t verify_failures = 0;  ///< acknowledged KV state mismatches

  std::string fault_tripped;  ///< DEEPMC_FAULTPOINT name, if one fired
  bool ok = true;  ///< no verify failure, no inconsistent recovery, no fault
};

/// Run one workload. Throws std::invalid_argument on a bad config;
/// fault-point trips are reported in EngineResult::fault_tripped, not
/// thrown (workers quiesce cleanly first).
[[nodiscard]] EngineResult run_load(const EngineConfig& cfg);

}  // namespace deepmc::load
