#include "load/serve_driver.h"

#include <chrono>
#include <map>
#include <mutex>
#include <sstream>
#include <thread>
#include <vector>

#include "serve/protocol.h"

namespace deepmc::load {

namespace {

/// Generate program `idx`: self-contained MIR with per-index store values
/// so every program is a distinct analysis unit (distinct cache keys on
/// the daemon). Three shapes cycle so responses exercise the clean path,
/// a missing-flush warning, and a two-root module's merge order.
std::string program_text(uint64_t idx) {
  std::ostringstream os;
  os << "module \"load" << idx << "\"\n"
     << "struct %rec { i64, i64 }\n\n";
  switch (idx % 3) {
    case 0:  // clean: flushed and fenced before ret
      os << "define void @clean" << idx << "() {\n"
         << "entry:\n"
         << "  %r = pm.alloc %rec\n"
         << "  %f = gep %r, 0\n"
         << "  store i64 " << (idx + 1) << ", %f !loc(\"load.c\", 5)\n"
         << "  pm.flush %f, 8\n"
         << "  pm.fence\n"
         << "  ret\n"
         << "}\n";
      break;
    case 1:  // missing flush: a durable-store warning every time
      os << "define void @leaky" << idx << "() {\n"
         << "entry:\n"
         << "  %r = pm.alloc %rec\n"
         << "  %f = gep %r, 1\n"
         << "  store i64 " << (idx + 1) << ", %f !loc(\"load.c\", 9)\n"
         << "  ret\n"
         << "}\n";
      break;
    default:  // two roots: exercises per-root merge order under the cache
      os << "define void @alpha" << idx << "() {\n"
         << "entry:\n"
         << "  %r = pm.alloc %rec\n"
         << "  %f = gep %r, 0\n"
         << "  store i64 " << (idx + 1) << ", %f !loc(\"load.c\", 5)\n"
         << "  pm.flush %f, 8\n"
         << "  pm.fence\n"
         << "  ret\n"
         << "}\n\n"
         << "define void @beta" << idx << "() {\n"
         << "entry:\n"
         << "  %r = pm.alloc %rec\n"
         << "  %f = gep %r, 1\n"
         << "  store i64 " << (idx + 2) << ", %f !loc(\"load.c\", 11)\n"
         << "  ret\n"
         << "}\n";
      break;
  }
  return os.str();
}

std::string analyze_header(uint64_t program, uint64_t deadline_ms) {
  std::ostringstream os;
  os << "{\"op\": \"analyze\", \"name\": \"load-prog-" << program
     << "\", \"format\": \"json\"";
  if (deadline_ms > 0) os << ", \"deadline_ms\": " << deadline_ms;
  os << "}";
  return os.str();
}

struct Shared {
  std::mutex mu;
  /// First response body seen per program — the identity baseline every
  /// later response (from any worker) must match byte-for-byte.
  std::map<uint64_t, std::string> baseline;
  ServeLoadResult totals;
};

void worker(const ServeLoadConfig& cfg, uint32_t index,
            const std::vector<std::string>& programs, Shared* shared) {
  serve::ServeClient client(cfg.target, cfg.retry);
  Rng rng = thread_rng(cfg.spec, index);
  const ZipfDist zipf = ZipfDist::for_spec(cfg.spec);
  ServeLoadResult local;
  std::string first_error;
  for (uint64_t i = 0; i < cfg.spec.ops_per_thread; ++i) {
    const LoadOp op = next_op(rng, cfg.spec, zipf);
    const uint64_t prog = op.key % programs.size();
    serve::RequestFrame req;
    req.header = analyze_header(prog, cfg.deadline_ms);
    req.body = programs[prog];
    serve::ResponseFrame resp;
    std::string err;
    ++local.requests;
    if (!client.call(req, &resp, &err)) {
      ++local.failures;
      if (first_error.empty()) first_error = err;
      continue;
    }
    if (resp.status != serve::kStatusOk) {
      ++local.failures;
      if (first_error.empty())
        first_error = serve::json_string_field(resp.meta, "error")
                          .value_or("server error");
      continue;
    }
    ++local.ok;
    if (serve::json_bool_field(resp.meta, "deadline_expired").value_or(false))
      ++local.deadline_expired;
    // A deadline-degraded body legitimately differs from a full run, so
    // it is excluded from the identity check; everything else must match
    // the first-seen body for its program exactly.
    else {
      std::lock_guard<std::mutex> lock(shared->mu);
      auto [it, inserted] = shared->baseline.emplace(prog, resp.body);
      if (!inserted && it->second != resp.body) {
        ++local.mismatches;
        if (first_error.empty())
          first_error = "byte-identity mismatch for program " +
                        std::to_string(prog);
      }
    }
  }
  const serve::ServeClient::Stats cs = client.stats();
  std::lock_guard<std::mutex> lock(shared->mu);
  ServeLoadResult& t = shared->totals;
  t.requests += local.requests;
  t.ok += local.ok;
  t.failures += local.failures;
  t.mismatches += local.mismatches;
  t.deadline_expired += local.deadline_expired;
  t.attempts += cs.attempts;
  t.retries += cs.retries;
  t.overloaded += cs.overloaded;
  t.reconnects += cs.reconnects;
  if (t.error.empty() && !first_error.empty()) t.error = first_error;
}

}  // namespace

ServeLoadResult run_serve_load(const ServeLoadConfig& cfg) {
  const uint64_t nprogs = cfg.programs == 0 ? 1 : cfg.programs;
  std::vector<std::string> programs;
  programs.reserve(nprogs);
  for (uint64_t i = 0; i < nprogs; ++i) programs.push_back(program_text(i));

  Shared shared;
  const auto t0 = std::chrono::steady_clock::now();
  std::vector<std::thread> threads;
  const uint32_t nthreads = cfg.spec.threads == 0 ? 1 : cfg.spec.threads;
  threads.reserve(nthreads);
  for (uint32_t t = 0; t < nthreads; ++t)
    threads.emplace_back(worker, std::cref(cfg), t, std::cref(programs),
                         &shared);
  for (std::thread& t : threads) t.join();
  shared.totals.seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  if (shared.totals.seconds > 0)
    shared.totals.requests_per_sec =
        static_cast<double>(shared.totals.requests) / shared.totals.seconds;
  return shared.totals;
}

}  // namespace deepmc::load
