// Deterministic keyed-KV workload streams for the load engine.
//
// The engine (engine.h) hammers the mini frameworks with millions of
// put/get/delete ops from many threads; everything observable about the
// schedule — which thread issues which op against which key with which
// value — is a pure function of (spec, thread index). That is what makes
// a fixed seed reproduce an identical workload at any checker mode, and
// what schedule_hash() fingerprints for the determinism tests.
//
// Key popularity follows a YCSB-style hot-set skew: a configurable
// fraction of the key space (hot_frac) absorbs a configurable share of
// accesses (hot_prob) — the zipfian-ish shape server caches live under.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "support/rng.h"

namespace deepmc::load {

enum class OpKind : uint8_t { kGet, kPut, kDel };

struct LoadOp {
  OpKind kind = OpKind::kGet;
  uint64_t key = 0;
  uint64_t value = 0;  ///< payload for puts (already mixed from the stream)
};

/// Percentage op mix; must sum to 100.
struct OpMix {
  uint32_t get_pct = 50;
  uint32_t put_pct = 40;
  uint32_t del_pct = 10;

  [[nodiscard]] bool valid() const {
    return get_pct + put_pct + del_pct == 100;
  }
};

struct WorkloadSpec {
  uint32_t threads = 8;
  uint64_t ops_per_thread = 100000;
  uint64_t keys = 1024;      ///< key space per shard
  OpMix mix;
  double hot_frac = 0.2;     ///< fraction of keys forming the hot set
  double hot_prob = 0.8;     ///< probability an access hits the hot set
  /// >0: replace the hot-set skew with a true bounded Zipfian over the
  /// key space, p(k) ~ 1/(k+1)^s (s=0.99 is the YCSB default shape).
  /// Key k IS popularity rank k, so rank-frequency monotonicity is exact.
  double zipf_s = 0;
  uint64_t seed = 42;
  double duration_s = 0;     ///< >0: stop on wall clock instead of op count
                             ///< (schedule determinism holds in ops mode)
};

/// The rng driving thread `t`'s op stream: seeded purely from (spec.seed,
/// t), so streams are independent and reproducible per thread.
[[nodiscard]] Rng thread_rng(const WorkloadSpec& spec, uint32_t thread);

/// Exact bounded Zipfian sampler by inverse-CDF table: O(keys) to build,
/// O(log keys) per pick. Callers build one per (spec) — per worker thread
/// is fine, the table is read-only after construction — and pass it to
/// next_op so the per-op cost stays a binary search, not a harmonic sum.
class ZipfDist {
 public:
  /// Inactive (never consulted) when spec.zipf_s <= 0 or keys < 2.
  ZipfDist() = default;
  [[nodiscard]] static ZipfDist for_spec(const WorkloadSpec& spec);

  [[nodiscard]] bool active() const { return !cdf_.empty(); }
  /// Key for a uniform u in [0,1). Key 0 is the most popular rank.
  [[nodiscard]] uint64_t pick(double u) const;

 private:
  std::vector<double> cdf_;  ///< cdf_[k] = P(key <= k), last entry 1.0
};

/// The next op of a stream. Pure: consumes exactly four rng draws per op
/// regardless of kind — op kind, key skew, key, value — so op index i of
/// thread t is position-independent, and the zipf and hot-set paths stay
/// draw-compatible (turning zipf on never shifts the value stream).
[[nodiscard]] LoadOp next_op(Rng& rng, const WorkloadSpec& spec,
                             const ZipfDist& zipf);
/// Hot-set-only convenience overload: ignores spec.zipf_s. Zipf callers
/// build a ZipfDist::for_spec once and use the three-argument form.
[[nodiscard]] LoadOp next_op(Rng& rng, const WorkloadSpec& spec);

/// FNV-1a fingerprint over every thread's full op stream, in thread order.
/// Identical across runs, checker modes, and interleavings by construction;
/// the determinism tests and the CI smoke job compare it between runs.
[[nodiscard]] uint64_t schedule_hash(const WorkloadSpec& spec);

[[nodiscard]] const char* op_name(OpKind kind);

}  // namespace deepmc::load
