#include "load/shards.h"

#include <algorithm>
#include <cstring>
#include <optional>
#include <stdexcept>

#include "frameworks/mnemosyne_mini.h"
#include "frameworks/nvmdirect_mini.h"
#include "frameworks/pmdk_mini.h"
#include "frameworks/pmfs_mini.h"

namespace deepmc::load {

namespace {

// Seeded-bug locations: stable strings so tests can pick the injected
// reports out of whatever the frameworks themselves produce.
const SourceLoc kSeedRaceFirst{"load-seed.race", 1};
const SourceLoc kSeedRaceSecond{"load-seed.race", 2};
const SourceLoc kSeedFlush{"load-seed.flush", 1};
const SourceLoc kSeedEpochA{"load-seed.epoch", 1};
const SourceLoc kSeedEpochB{"load-seed.epoch", 2};

// Slot-table shards: keep the table comfortably inside the pool (the rest
// is needed for logs/journals and the pool header/undo machinery).
uint64_t table_slots(const ShardConfig& cfg) {
  const uint64_t fit = cfg.pool_bytes / 64;
  return std::min<uint64_t>(cfg.keys, std::min<uint64_t>(fit, 1ull << 16));
}

}  // namespace

KvShard::KvShard(const ShardConfig& cfg, uint64_t capacity)
    : pool_(cfg.pool_bytes), cfg_(cfg), capacity_(capacity == 0 ? 1 : capacity) {}

void KvShard::init_scratch() {
  if (!cfg_.seed_bugs) return;
  scratch_ = pool_.alloc(64);
  if (cfg_.rt != nullptr) cfg_.rt->on_alloc(scratch_, 64);
  pool_.memset_persist(scratch_, 0, 64);
}

void KvShard::maybe_seed_bug(uint64_t i) {
  if (!cfg_.seed_bugs || cfg_.rt == nullptr || scratch_ == 0) return;
  rt::RuntimeChecker* rt = cfg_.rt;

  if (i % 64 == 0) {
    // WAW strand race: two strands write the same scratch word with no
    // persist barrier between them, so neither is ordered before the other.
    {
      rt::StrandScope s1(rt);
      pool_.store_val<uint64_t>(scratch_, i);
      rt->on_write(rt::current_strand(), scratch_, 8, kSeedRaceFirst);
    }
    {
      rt::StrandScope s2(rt);
      pool_.store_val<uint64_t>(scratch_, i + 1);
      rt->on_write(rt::current_strand(), scratch_, 8, kSeedRaceSecond);
    }
    pool_.persist(scratch_, 8);
    rt->on_fence(rt::current_strand());
  }

  if (i % 97 == 0) {
    // Redundant write-back: flush a line the previous flush already wrote
    // back. The pool is the ground truth (flush() returns "redundant").
    pool_.store_val<uint64_t>(scratch_ + 8, i + 1);
    pool_.flush(scratch_ + 8, 8);
    if (pool_.flush(scratch_ + 8, 8))
      rt->report_redundant_flush(kSeedFlush, scratch_ + 8);
    pool_.fence();
    rt->on_fence(rt::current_strand());
  }

  if (i % 129 == 0) {
    // Inter-epoch mismatch: two consecutive epochs persist disjoint words
    // of the scratch object (the update protocol "forgot" half the object).
    rt->epoch_begin();
    pool_.store_val<uint64_t>(scratch_ + 16, i + 1);
    rt->on_write(rt::current_strand(), scratch_ + 16, 8, kSeedEpochA);
    rt->epoch_end();
    rt->epoch_begin();
    pool_.store_val<uint64_t>(scratch_ + 24, i + 1);
    rt->on_write(rt::current_strand(), scratch_ + 24, 8, kSeedEpochB);
    rt->epoch_end();
    pool_.persist(scratch_ + 16, 16);
  }
}

namespace {

// ---------------------------------------------------------------------------
// pmdk_mini: slot table updated under undo-log transactions
// ---------------------------------------------------------------------------

class PmdkShard final : public KvShard {
 public:
  explicit PmdkShard(const ShardConfig& cfg)
      : KvShard(cfg, table_slots(cfg)),
        op_(pool_, pmdk::PerfBugConfig::clean(), cfg.rt) {
    table_ = op_.alloc(capacity_ * 8);
    op_.memset_persist(table_, 0, capacity_ * 8);
    op_.set_root(table_);
    init_scratch();
  }

  [[nodiscard]] std::string framework() const override { return "pmdk_mini"; }

  void put(uint64_t slot, uint64_t value) override {
    pmdk::Tx tx(op_);
    tx.add(slot_off(slot), 8);
    tx.write_val<uint64_t>(slot_off(slot), value);
    tx.commit();
  }

  [[nodiscard]] uint64_t get(uint64_t slot) override {
    return op_.read_val<uint64_t>(slot_off(slot));
  }

  void del(uint64_t slot) override { put(slot, 0); }

  void recover() override {
    pmdk::recover(op_);
    table_ = op_.root();
  }

 private:
  [[nodiscard]] uint64_t slot_off(uint64_t slot) const {
    return table_ + slot * 8;
  }
  pmdk::ObjPool op_;
  uint64_t table_ = 0;
};

// ---------------------------------------------------------------------------
// mnemosyne_mini: slot table updated under durable (redo-log) transactions
// ---------------------------------------------------------------------------

class MnemosyneShard final : public KvShard {
 public:
  explicit MnemosyneShard(const ShardConfig& cfg)
      : KvShard(cfg, table_slots(cfg)),
        m_(pool_, mnemosyne::PerfBugConfig::clean(), cfg.rt) {
    table_ = m_.pmalloc(capacity_ * 8);
    // Zero-init straight through the pool: one bulk persist instead of a
    // capacity-sized redo log.
    pool_.memset_persist(table_, 0, capacity_ * 8);
    pool_.set_root(table_);
    init_scratch();
  }

  [[nodiscard]] std::string framework() const override {
    return "mnemosyne_mini";
  }

  void put(uint64_t slot, uint64_t value) override {
    mnemosyne::DurableTx tx(m_);
    tx.write_word(slot_off(slot), value);
    tx.commit();
  }

  [[nodiscard]] uint64_t get(uint64_t slot) override {
    return m_.read_word(slot_off(slot));
  }

  void del(uint64_t slot) override { put(slot, 0); }

  void recover() override {
    m_.recover();
    table_ = pool_.root();
  }

 private:
  [[nodiscard]] uint64_t slot_off(uint64_t slot) const {
    return table_ + slot * 8;
  }
  mnemosyne::Mnemosyne m_;
  uint64_t table_ = 0;
};

// ---------------------------------------------------------------------------
// pmfs_mini: one file per live key
// ---------------------------------------------------------------------------

class PmfsShard final : public KvShard {
 public:
  // Every live key is a whole file (inode + data block + dirent scan), so
  // clamp the slot count well below the table-based shards.
  static constexpr uint64_t kMaxSlots = 64;

  explicit PmfsShard(const ShardConfig& cfg)
      : KvShard(cfg, std::min<uint64_t>(cfg.keys, kMaxSlots)) {
    pmfs::Geometry geo;
    geo.inodes = static_cast<uint32_t>(capacity_ + 8);
    geo.blocks = static_cast<uint32_t>(capacity_ + 16);
    fs_ = pmfs::Pmfs::mkfs(pool_, geo, pmfs::PerfBugConfig::clean(), cfg_.rt);
    init_scratch();
  }

  [[nodiscard]] std::string framework() const override { return "pmfs_mini"; }

  void put(uint64_t slot, uint64_t value) override {
    const std::string name = file_name(slot);
    uint32_t ino = fs_->lookup(name);
    if (ino == pmfs::Pmfs::kNoInode) ino = fs_->create(name);
    fs_->write_file(ino, &value, 8);
  }

  [[nodiscard]] uint64_t get(uint64_t slot) override {
    const uint32_t ino = fs_->lookup(file_name(slot));
    if (ino == pmfs::Pmfs::kNoInode) return 0;
    const std::vector<uint8_t> data = fs_->read_file(ino);
    if (data.size() < 8) return 0;
    uint64_t v = 0;
    std::memcpy(&v, data.data(), 8);
    return v;
  }

  void del(uint64_t slot) override {
    const std::string name = file_name(slot);
    if (fs_->lookup(name) != pmfs::Pmfs::kNoInode) fs_->unlink(name);
  }

  void recover() override {
    fs_ = pmfs::Pmfs::mount(pool_, pmfs::PerfBugConfig::clean(), cfg_.rt);
  }

 private:
  [[nodiscard]] static std::string file_name(uint64_t slot) {
    std::string name = "k";
    name += std::to_string(slot);
    return name;
  }
  std::optional<pmfs::Pmfs> fs_;
};

// ---------------------------------------------------------------------------
// nvmdirect_mini: strict persistency, one write_persist1 per update
// ---------------------------------------------------------------------------

class NvmdirectShard final : public KvShard {
 public:
  explicit NvmdirectShard(const ShardConfig& cfg) : KvShard(cfg, table_slots(cfg)) {
    region_ = nvmdirect::NvmRegion::create(
        pool_, nvmdirect::PerfBugConfig::clean(), cfg_.rt);
    table_ = region_->heap_alloc(capacity_ * 8);
    pool_.memset_persist(table_, 0, capacity_ * 8);
    // The region header (the pool root) uses offsets 0/8/16; stash the
    // table offset in the spare word so attach() can find it post-crash.
    region_->write_persist1(pool_.root() + 24, table_);
    init_scratch();
  }

  [[nodiscard]] std::string framework() const override {
    return "nvmdirect_mini";
  }

  void put(uint64_t slot, uint64_t value) override {
    // A single persisted word per key: atomic under strict persistency.
    region_->write_persist1(slot_off(slot), value);
  }

  [[nodiscard]] uint64_t get(uint64_t slot) override {
    const uint64_t v = pool_.load_val<uint64_t>(slot_off(slot));
    if (cfg_.rt != nullptr)
      cfg_.rt->on_read(rt::current_strand(), slot_off(slot), 8, {});
    return v;
  }

  void del(uint64_t slot) override { put(slot, 0); }

  void recover() override {
    region_ = nvmdirect::NvmRegion::attach(
        pool_, nvmdirect::PerfBugConfig::clean(), cfg_.rt);
    table_ = pool_.load_val<uint64_t>(pool_.root() + 24);
  }

 private:
  [[nodiscard]] uint64_t slot_off(uint64_t slot) const {
    return table_ + slot * 8;
  }
  std::optional<nvmdirect::NvmRegion> region_;
  uint64_t table_ = 0;
};

}  // namespace

const std::vector<std::string>& framework_names() {
  static const std::vector<std::string> kNames = {
      "pmdk_mini", "mnemosyne_mini", "pmfs_mini", "nvmdirect_mini"};
  return kNames;
}

std::unique_ptr<KvShard> make_shard(const std::string& framework,
                                    const ShardConfig& cfg) {
  if (framework == "pmdk_mini") return std::make_unique<PmdkShard>(cfg);
  if (framework == "mnemosyne_mini")
    return std::make_unique<MnemosyneShard>(cfg);
  if (framework == "pmfs_mini") return std::make_unique<PmfsShard>(cfg);
  if (framework == "nvmdirect_mini")
    return std::make_unique<NvmdirectShard>(cfg);
  throw std::invalid_argument("unknown framework '" + framework +
                              "' (expected pmdk_mini, mnemosyne_mini, "
                              "pmfs_mini or nvmdirect_mini)");
}

}  // namespace deepmc::load
