// KV shard adapters: one uniform keyed put/get/delete surface per mini
// framework, so the load engine (engine.h) can hammer pmdk_mini,
// mnemosyne_mini, pmfs_mini and nvmdirect_mini with the same op streams.
//
// Each shard owns its PmPool (workers never share a pool — the emulation
// substrate is deliberately single-threaded, concurrency lives in the
// checker) and maps a key to a fixed slot, one 64-bit value per slot with
// 0 meaning "absent" (the workload generator never emits value 0). That
// single-word-per-key layout keeps every framework's update atomic under
// its own protocol:
//
//   pmdk_mini       slot table updated under a Tx (undo log rolls back)
//   mnemosyne_mini  slot table updated under a DurableTx (redo log)
//   pmfs_mini       one file per live key ("k<slot>"), unlink on delete
//   nvmdirect_mini  write_persist1 on the slot word (strict persistency)
//
// recover() re-runs the framework's post-crash entry point and re-binds
// the handle, matching what the crash/ recovery oracles replay; the engine
// calls it from inside an oracle invariant after a crash-at-random-op.
//
// When ShardConfig::seed_bugs is set, maybe_seed_bug(i) injects the three
// deep-bug patterns the runtime checker hunts at deterministic op indexes
// (WAW strand race, redundant write-back, inter-epoch mismatch) against a
// private scratch object — ground truth for the sampled-subset tests.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "pmem/pool.h"
#include "runtime/dynamic_checker.h"

namespace deepmc::load {

struct ShardConfig {
  uint64_t keys = 1024;  ///< requested key space (capacity() may clamp)
  rt::RuntimeChecker* rt = nullptr;  ///< checker to instrument against
  bool seed_bugs = false;            ///< arm maybe_seed_bug()
  uint64_t pool_bytes = 8ull << 20;  ///< per-shard pool size
};

class KvShard {
 public:
  virtual ~KvShard() = default;
  KvShard(const KvShard&) = delete;
  KvShard& operator=(const KvShard&) = delete;

  [[nodiscard]] virtual std::string framework() const = 0;

  /// Number of key slots actually backed by storage; keys map onto slots
  /// with slot_of(). pmfs clamps harder than the table-based shards (each
  /// live key is a whole file there).
  [[nodiscard]] uint64_t capacity() const { return capacity_; }
  [[nodiscard]] uint64_t slot_of(uint64_t key) const {
    return key % capacity_;
  }

  virtual void put(uint64_t slot, uint64_t value) = 0;
  /// Value at `slot`; 0 = absent.
  [[nodiscard]] virtual uint64_t get(uint64_t slot) = 0;
  virtual void del(uint64_t slot) = 0;

  /// Re-run the framework's post-crash recovery and re-bind this handle.
  virtual void recover() = 0;

  [[nodiscard]] pmem::PmPool& pool() { return pool_; }

  /// Deterministically inject the seeded deep-bug patterns for op index
  /// `i` (see file header). No-op unless ShardConfig::seed_bugs and a
  /// checker are set. Call between ops, outside any ambient strand.
  void maybe_seed_bug(uint64_t i);

 protected:
  KvShard(const ShardConfig& cfg, uint64_t capacity);

  /// Allocate + register the seeded-bug scratch object. Derived ctors call
  /// this after their framework is initialized (so allocation instruments
  /// through the same checker the workload will use).
  void init_scratch();

  pmem::PmPool pool_;
  ShardConfig cfg_;
  uint64_t capacity_;
  uint64_t scratch_ = 0;  ///< 64B scratch object for seeded bugs
};

/// Framework tags make_shard() accepts, in canonical order:
/// pmdk_mini, mnemosyne_mini, pmfs_mini, nvmdirect_mini.
[[nodiscard]] const std::vector<std::string>& framework_names();

/// Build a fresh shard for `framework` (throws std::invalid_argument on an
/// unknown tag).
[[nodiscard]] std::unique_ptr<KvShard> make_shard(const std::string& framework,
                                                  const ShardConfig& cfg);

}  // namespace deepmc::load
