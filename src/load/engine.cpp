#include "load/engine.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <latch>
#include <memory>
#include <optional>
#include <sstream>
#include <stdexcept>
#include <thread>

#include "crash/recovery_oracle.h"
#include "load/shards.h"
#include "obs/flight.h"
#include "support/faultpoint.h"

namespace deepmc::load {

namespace {

using Clock = std::chrono::steady_clock;

std::string hex(uint64_t v) {
  std::ostringstream os;
  os << std::hex << v;
  return os.str();
}

/// Canonical warning identities from one checker. `prefix` disambiguates
/// per-worker checkers (their pools have colliding offsets).
void collect_keys(const rt::RuntimeChecker& rt, const std::string& prefix,
                  std::vector<std::string>& out) {
  for (const rt::RaceReport& r : rt.races())
    out.push_back(prefix + (r.kind == rt::RaceKind::kWaw ? "waw:" : "raw:") +
                  hex(r.addr));
  for (const rt::EpochMismatchReport& e : rt.epoch_mismatches())
    out.push_back(prefix + "epoch:" + hex(e.object_base) + ":" +
                  e.second_loc.str());
  for (const rt::RuntimeFlushReport& f : rt.redundant_flushes())
    out.push_back(prefix + "flush:" + f.loc.str() + ":" + hex(f.addr));
  for (const rt::RuntimeBarrierReport& b : rt.barrier_violations())
    out.push_back(prefix + "unfenced:" + b.loc.str());
}

void fold_checker(const rt::RuntimeChecker& rt, const std::string& prefix,
                  EngineResult& res) {
  res.races += rt.races().size();
  res.epoch_mismatches += rt.epoch_mismatches().size();
  res.redundant_flushes += rt.redundant_flushes().size();
  res.barrier_violations += rt.barrier_violations().size();
  const rt::RuntimeStats s = rt.stats();
  res.strands += s.strands_opened;
  res.fences += s.fences;
  res.tracked_words += rt.tracked_words();
  collect_keys(rt, prefix, res.warning_keys);
}

struct WorkerOut {
  uint64_t gets = 0, puts = 0, dels = 0;
  uint64_t crashes = 0, recoveries_consistent = 0, verify_failures = 0;
  /// Per-op-kind latency, accumulated locally (no atomics on the op
  /// path); folded into EngineResult::latency after the join.
  std::array<obs::HistogramValue, 3> lat;
  std::string fault_tripped;
  std::string error;
};

obs::HistogramValue fresh_hist() {
  obs::HistogramValue h;
  h.bounds = latency_buckets_ns();
  h.counts.assign(h.bounds.size(), 0);
  return h;
}

void observe_local(obs::HistogramValue& h, uint64_t ns) {
  size_t i = 0;
  while (i < h.bounds.size() && ns > h.bounds[i]) ++i;
  if (i < h.bounds.size())
    ++h.counts[i];
  else
    ++h.overflow;
  h.sum += ns;
  ++h.count;
}

void merge_hist(obs::HistogramValue& dst, const obs::HistogramValue& src) {
  if (dst.bounds.empty()) dst = fresh_hist();
  for (size_t i = 0; i < src.counts.size() && i < dst.counts.size(); ++i)
    dst.counts[i] += src.counts[i];
  dst.overflow += src.overflow;
  dst.sum += src.sum;
  dst.count += src.count;
}

struct Worker {
  const EngineConfig* cfg = nullptr;
  uint32_t index = 0;
  rt::RuntimeChecker* rt = nullptr;  ///< nullptr in kOff mode
  support::FaultScope* faults = nullptr;
  std::latch* ready = nullptr;
  std::latch* start = nullptr;
  std::atomic<bool>* stop = nullptr;
  WorkerOut out;

  void run();

 private:
  void crash_recover(KvShard& shard, std::vector<uint64_t>& model,
                     const LoadOp& op, bool committed);
};

void Worker::run() {
  support::FaultActivation activation(faults);
  const WorkloadSpec& spec = cfg->spec;
  // Shared mode: every worker gets a disjoint address-space tag so one
  // checker can tell the per-worker pools apart.
  std::optional<rt::AddrSpaceScope> tag;
  if (cfg->checker == CheckerMode::kShared)
    tag.emplace(static_cast<uint64_t>(index + 1) << 44);

  std::unique_ptr<KvShard> shard;
  try {
    ShardConfig scfg;
    scfg.keys = spec.keys;
    scfg.rt = rt;
    scfg.seed_bugs = cfg->seed_bugs;
    scfg.pool_bytes = cfg->pool_bytes;
    shard = make_shard(cfg->framework, scfg);
  } catch (const std::exception& e) {
    out.error = std::string("shard init: ") + e.what();
  }
  ready->count_down();
  start->wait();
  if (!shard) return;

  // Acknowledged state: what a correct shard must serve after any crash.
  std::vector<uint64_t> model(shard->capacity(), 0);
  Rng rng = thread_rng(spec, index);
  // Built once per worker (read-only afterwards); inactive when zipf is
  // off, so the hot-set default pays nothing.
  const ZipfDist zipf = ZipfDist::for_spec(spec);
  // Crash plan (worker 0 only): arm the pool's fault injection just before
  // the chosen op; the fault lands at a seed-chosen persistence event soon
  // after, possibly a few ops later if the op turns out to be read-only.
  int64_t crash_at = -1;
  Rng crash_rng(spec.seed ^ 0x5bd1e995c7a5a5a5ull);
  if (index == 0) {
    if (cfg->crash_random && spec.ops_per_thread > 0)
      crash_at = static_cast<int64_t>(crash_rng.below(spec.ops_per_thread));
    else
      crash_at = cfg->crash_at;
  }

  const bool measure = cfg->measure_latency;
  if (measure)
    for (obs::HistogramValue& h : out.lat) h = fresh_hist();

  const uint64_t ops =
      spec.duration_s > 0 ? UINT64_MAX : spec.ops_per_thread;
  try {
    for (uint64_t i = 0; i < ops; ++i) {
      if (stop->load(std::memory_order_relaxed)) break;
      const LoadOp op = next_op(rng, spec, zipf);
      const uint64_t slot = shard->slot_of(op.key);
      if (crash_at >= 0 && i == static_cast<uint64_t>(crash_at))
        shard->pool().inject_fault_after(1 + crash_rng.below(6));
      DEEPMC_FAULTPOINT("load.op");
      bool committed = false;
      try {
        const Clock::time_point op_t0 =
            measure ? Clock::now() : Clock::time_point();
        {
          rt::StrandScope strand(rt);
          switch (op.kind) {
            case OpKind::kGet: {
              const uint64_t v = shard->get(slot);
              if (v != model[slot]) ++out.verify_failures;
              ++out.gets;
              break;
            }
            case OpKind::kPut:
              shard->put(slot, op.value);
              model[slot] = op.value;
              ++out.puts;
              break;
            case OpKind::kDel:
              shard->del(slot);
              model[slot] = 0;
              ++out.dels;
              break;
          }
        }
        if (measure)
          observe_local(
              out.lat[static_cast<size_t>(op.kind)],
              static_cast<uint64_t>(
                  std::chrono::duration_cast<std::chrono::nanoseconds>(
                      Clock::now() - op_t0)
                      .count()));
        committed = true;
        shard->maybe_seed_bug(i);
      } catch (const pmem::PmFault&) {
        crash_recover(*shard, model, op, committed);
      }
      // Inter-op persist barrier: op i's strand ended before it, op i+1's
      // strand is born after it, so consecutive same-slot updates are
      // ordered and only genuinely concurrent strands (the seeded bugs)
      // can race.
      if (rt != nullptr) rt->on_fence(0);
    }
    shard->pool().inject_fault_after(0);  // disarm a never-tripped plan
  } catch (const support::FaultInjected& e) {
    out.fault_tripped = e.point();
  } catch (const std::exception& e) {
    out.error = e.what();
  }
}

void Worker::crash_recover(KvShard& shard, std::vector<uint64_t>& model,
                           const LoadOp& op, bool committed) {
  DEEPMC_FAULTPOINT("load.crash");
  shard.pool().crash();
  const std::unique_ptr<crash::RecoveryOracle> oracle =
      crash::make_oracle(cfg->framework);
  if (!oracle) throw std::runtime_error("no recovery oracle for framework");

  const uint64_t slot = shard.slot_of(op.key);
  bool state_ok = true;
  bool invariant_ran = false;
  // Empty image: the pool already holds exactly what survived the crash;
  // classify() replays the framework's recovery entry on it, then the
  // invariant re-binds our handle and audits the acknowledged state.
  const crash::RecoveryOutcome outcome = oracle->classify(
      shard.pool(), crash::CrashImage{}, [&](pmem::PmPool&) {
        invariant_ran = true;
        shard.recover();
        for (uint64_t s = 0; s < shard.capacity(); ++s) {
          const uint64_t v = shard.get(s);
          bool allowed = v == model[s];
          if (!allowed && !committed && s == slot) {
            // The in-flight op may have persisted or not: both states are
            // acceptable, anything else is a lost/torn update.
            if (op.kind == OpKind::kPut) allowed = v == op.value;
            if (op.kind == OpKind::kDel) allowed = v == 0;
          }
          if (!allowed) {
            state_ok = false;
            return false;
          }
        }
        return true;
      });

  ++out.crashes;
  if (outcome == crash::RecoveryOutcome::kConsistent)
    ++out.recoveries_consistent;
  if (!state_ok) ++out.verify_failures;
  obs::flight().record(
      "crash.cycle",
      obs::flight_join(
          {obs::flight_kv("framework", cfg->framework),
           obs::flight_kv("outcome",
                          outcome == crash::RecoveryOutcome::kConsistent
                              ? "consistent"
                              : "inconsistent"),
           obs::flight_kv("state", state_ok ? "verified" : "mismatch")}));
  if (!invariant_ran) shard.recover();  // classify failed earlier: re-bind
  // Adopt whatever the in-flight slot actually recovered to.
  model[slot] = shard.get(slot);
}

}  // namespace

const char* checker_mode_name(CheckerMode mode) {
  switch (mode) {
    case CheckerMode::kOff: return "off";
    case CheckerMode::kShared: return "shared";
    case CheckerMode::kPerShard: return "per-shard";
  }
  return "?";
}

EngineResult run_load(const EngineConfig& cfg) {
  const WorkloadSpec& spec = cfg.spec;
  if (spec.threads == 0)
    throw std::invalid_argument("load: threads must be >= 1");
  if (!spec.mix.valid())
    throw std::invalid_argument("load: op mix must sum to 100");
  if (spec.ops_per_thread == 0 && spec.duration_s <= 0)
    throw std::invalid_argument("load: need an op count or a duration");
  if (framework_names().end() == std::find(framework_names().begin(),
                                           framework_names().end(),
                                           cfg.framework))
    throw std::invalid_argument("load: unknown framework '" + cfg.framework +
                                "'");

  // One checker shared by everyone, or one per worker (see engine.h).
  std::optional<rt::RuntimeChecker> shared_rt;
  std::vector<std::unique_ptr<rt::RuntimeChecker>> shard_rts;
  if (cfg.checker == CheckerMode::kShared)
    shared_rt.emplace(core::PersistencyModel::kStrand, cfg.rt_opts);
  else if (cfg.checker == CheckerMode::kPerShard)
    for (uint32_t t = 0; t < spec.threads; ++t)
      shard_rts.push_back(std::make_unique<rt::RuntimeChecker>(
          core::PersistencyModel::kStrand, cfg.rt_opts));

  support::FaultScope faults;
  std::latch ready(spec.threads);
  std::latch start(1);
  std::atomic<bool> stop{false};

  std::vector<Worker> workers(spec.threads);
  for (uint32_t t = 0; t < spec.threads; ++t) {
    Worker& w = workers[t];
    w.cfg = &cfg;
    w.index = t;
    w.rt = cfg.checker == CheckerMode::kShared ? &*shared_rt
           : cfg.checker == CheckerMode::kPerShard ? shard_rts[t].get()
                                                   : nullptr;
    w.faults = &faults;
    w.ready = &ready;
    w.start = &start;
    w.stop = &stop;
  }

  std::vector<std::thread> threads;
  threads.reserve(spec.threads);
  for (uint32_t t = 0; t < spec.threads; ++t)
    threads.emplace_back([&workers, t] { workers[t].run(); });

  ready.wait();  // all shards built: time only the op loop
  const Clock::time_point t0 = Clock::now();
  start.count_down();
  if (spec.duration_s > 0) {
    const auto deadline =
        t0 + std::chrono::duration_cast<Clock::duration>(
                 std::chrono::duration<double>(spec.duration_s));
    while (Clock::now() < deadline)
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    stop.store(true, std::memory_order_relaxed);
  }
  for (std::thread& th : threads) th.join();
  const double seconds =
      std::chrono::duration<double>(Clock::now() - t0).count();

  EngineResult res;
  res.framework = cfg.framework;
  res.seconds = seconds;
  if (spec.duration_s <= 0) res.schedule_hash = schedule_hash(spec);

  res.latency_measured = cfg.measure_latency;

  std::string first_error;
  for (const Worker& w : workers) {
    res.gets += w.out.gets;
    res.puts += w.out.puts;
    res.dels += w.out.dels;
    if (cfg.measure_latency)
      for (size_t k = 0; k < res.latency.size(); ++k)
        merge_hist(res.latency[k], w.out.lat[k]);
    res.crashes += w.out.crashes;
    res.recoveries_consistent += w.out.recoveries_consistent;
    res.verify_failures += w.out.verify_failures;
    if (!w.out.fault_tripped.empty() && res.fault_tripped.empty())
      res.fault_tripped = w.out.fault_tripped;
    if (!w.out.error.empty() && first_error.empty()) first_error = w.out.error;
  }
  if (!first_error.empty())
    throw std::runtime_error("load worker failed: " + first_error);

  res.total_ops = res.gets + res.puts + res.dels;
  res.ops_per_sec = seconds > 0 ? static_cast<double>(res.total_ops) / seconds
                                : 0.0;

  if (shared_rt) {
    shared_rt->drain();
    fold_checker(*shared_rt, "", res);
    shared_rt->publish_obs();
  }
  for (uint32_t t = 0; t < shard_rts.size(); ++t) {
    shard_rts[t]->drain();
    std::string prefix = "s";
    prefix += std::to_string(t);
    prefix += '|';
    fold_checker(*shard_rts[t], prefix, res);
  }
  std::sort(res.warning_keys.begin(), res.warning_keys.end());
  res.warning_keys.erase(
      std::unique(res.warning_keys.begin(), res.warning_keys.end()),
      res.warning_keys.end());

  // Surface the folded latency through the obs registry too, so a
  // metrics snapshot (or a scraping daemon) sees the same distributions
  // --latency-json prints. Volatile: latency is wall-clock data.
  if (cfg.measure_latency && obs::enabled()) {
    static const std::array<const char*, 3> kNames = {
        "load.latency.get", "load.latency.put", "load.latency.del"};
    for (size_t k = 0; k < kNames.size(); ++k) {
      obs::Histogram h = obs::registry().histogram(
          kNames[k], obs::Volatility::kVolatile,
          std::string("op latency ns (") + op_name(static_cast<OpKind>(k)) +
              ")",
          latency_buckets_ns());
      h.add(res.latency[k]);
    }
  }

  res.ok = res.verify_failures == 0 &&
           res.recoveries_consistent == res.crashes &&
           res.fault_tripped.empty();
  return res;
}

std::vector<uint64_t> latency_buckets_ns() {
  return {250,    500,    1000,   2000,   4000,    8000,
          16000,  32000,  64000,  128000, 256000,  1000000};
}

}  // namespace deepmc::load
