#include "load/workload.h"

#include <algorithm>
#include <cmath>

namespace deepmc::load {

Rng thread_rng(const WorkloadSpec& spec, uint32_t thread) {
  // splitmix of (seed, thread) so adjacent threads get unrelated streams.
  uint64_t z = spec.seed ^ (0x9e3779b97f4a7c15ull * (thread + 1));
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  return Rng(z);
}

ZipfDist ZipfDist::for_spec(const WorkloadSpec& spec) {
  ZipfDist dist;
  if (spec.zipf_s <= 0 || spec.keys < 2) return dist;
  // Exact inverse-CDF table: p(k) ~ 1/(k+1)^s normalized by the
  // generalized harmonic number. One pass, then every pick is a binary
  // search — no per-op pow() and no rejection loop (a rejection sampler
  // would consume a data-dependent number of draws and break the
  // four-draws-per-op determinism contract).
  dist.cdf_.resize(spec.keys);
  double h = 0;
  for (uint64_t k = 0; k < spec.keys; ++k) {
    h += 1.0 / std::pow(static_cast<double>(k + 1), spec.zipf_s);
    dist.cdf_[k] = h;
  }
  for (double& c : dist.cdf_) c /= h;
  dist.cdf_.back() = 1.0;  // guard against accumulated rounding
  return dist;
}

uint64_t ZipfDist::pick(double u) const {
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  const size_t idx = it == cdf_.end() ? cdf_.size() - 1
                                      : static_cast<size_t>(it - cdf_.begin());
  return static_cast<uint64_t>(idx);
}

LoadOp next_op(Rng& rng, const WorkloadSpec& spec, const ZipfDist& zipf) {
  LoadOp op;
  const uint64_t roll = rng.below(100);
  if (roll < spec.mix.get_pct) {
    op.kind = OpKind::kGet;
  } else if (roll < spec.mix.get_pct + spec.mix.put_pct) {
    op.kind = OpKind::kPut;
  } else {
    op.kind = OpKind::kDel;
  }

  if (zipf.active()) {
    // Same two draws as the hot-set path, in the same order: the uniform
    // becomes the CDF probe, and the key draw is burned unused. Flipping
    // zipf on therefore never shifts the value stream below.
    const double u = rng.uniform();
    (void)rng.next();
    op.key = zipf.pick(u);
  } else {
    const uint64_t keys = spec.keys == 0 ? 1 : spec.keys;
    uint64_t hot = static_cast<uint64_t>(static_cast<double>(keys) *
                                         spec.hot_frac);
    if (hot == 0) hot = 1;
    if (hot > keys) hot = keys;
    // Two draws, always: one for hot-vs-cold, one for the key, so every
    // op consumes the same amount of randomness.
    const bool in_hot = rng.uniform() < spec.hot_prob;
    op.key = in_hot ? rng.below(hot) : rng.below(keys);
  }

  op.value = rng.next() | 1;  // puts never store 0 (0 = "absent" sentinel)
  return op;
}

LoadOp next_op(Rng& rng, const WorkloadSpec& spec) {
  static const ZipfDist inactive;
  return next_op(rng, spec, inactive);
}

uint64_t schedule_hash(const WorkloadSpec& spec) {
  uint64_t h = 0xcbf29ce484222325ull;  // FNV-1a offset basis
  auto mix = [&h](uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (i * 8)) & 0xff;
      h *= 0x100000001b3ull;
    }
  };
  const ZipfDist zipf = ZipfDist::for_spec(spec);
  for (uint32_t t = 0; t < spec.threads; ++t) {
    Rng rng = thread_rng(spec, t);
    mix(t);
    for (uint64_t i = 0; i < spec.ops_per_thread; ++i) {
      const LoadOp op = next_op(rng, spec, zipf);
      mix(static_cast<uint64_t>(op.kind));
      mix(op.key);
      mix(op.value);
    }
  }
  return h;
}

const char* op_name(OpKind kind) {
  switch (kind) {
    case OpKind::kGet: return "get";
    case OpKind::kPut: return "put";
    case OpKind::kDel: return "del";
  }
  return "?";
}

}  // namespace deepmc::load
