// Clean (bug-free) NVM programs rounding out the "16 NVM programs" the
// paper analyzes. Precision guard for the checker (no findings allowed)
// and correctness guard for the substrate (executable, crash-consistent).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/model.h"
#include "ir/module.h"

namespace deepmc::corpus {

struct CleanProgram {
  std::string name;  ///< e.g. "clean/pmdk_queue"
  core::PersistencyModel model;
  std::unique_ptr<ir::Module> module;  ///< has @main; executable
};

std::vector<std::string> clean_program_names();
CleanProgram build_clean_program(const std::string& name);
std::vector<CleanProgram> build_clean_programs();

}  // namespace deepmc::corpus
