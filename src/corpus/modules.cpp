// The corpus programs. Each MIR text mirrors the paper-cited source file;
// !loc metadata pins every seeded bug to the paper's file:line so checker
// reports can be matched against Tables 3 and 8 row by row.
#include "corpus/corpus.h"

#include <map>
#include <stdexcept>

#include "ir/parser.h"
#include "ir/verifier.h"

namespace deepmc::corpus {

namespace {

struct ModuleSpec {
  Framework framework;
  bool executable;
  const char* text;
  const char* fixed_text;  ///< bug-free variant (null for executable mods)
};

// ===========================================================================
// PMDK (strict persistency)
// ===========================================================================

// btree_map.c — Figure 2's unlogged write (201), a repeated persist (365),
// a redundant flush (465), and the unflushed-write false positive (290)
// where the flush happens inside an external helper.
constexpr const char* kBtreeMap = R"(
module "pmdk/btree_map"
struct %tree_node { i64, i64, [4 x i64] }
declare void @pmem_flush_helper(%tree_node*)

define void @btree_map_create_split_node(%tree_node* %node) {
entry:
  %items = gep %node, 2
  %slot = gep %items, 3
  store i64 0, %slot !loc("btree_map.c", 201)
  ret
}

define void @btree_map_insert_demo() {
entry:
  %parent = pm.alloc %tree_node
  %child = pm.alloc %tree_node
  tx.begin !loc("btree_map.c", 180)
  tx.add %parent, 48
  %n = gep %parent, 0
  store i64 5, %n !loc("btree_map.c", 190)
  call @btree_map_create_split_node(%child)
  pm.fence
  tx.end
  ret
}

define void @btree_map_insert_item_demo() {
entry:
  %node = pm.alloc %tree_node
  tx.begin !loc("btree_map.c", 355)
  tx.add %node, 48
  %n = gep %node, 0
  store i64 1, %n !loc("btree_map.c", 358)
  pm.persist %n, 8 !loc("btree_map.c", 360)
  store i64 2, %n !loc("btree_map.c", 363)
  pm.persist %n, 8 !loc("btree_map.c", 365)
  tx.end
  ret
}

define void @btree_map_remove_demo() {
entry:
  %node = pm.alloc %tree_node
  tx.begin !loc("btree_map.c", 455)
  tx.add %node, 48
  %n = gep %node, 0
  store i64 0, %n !loc("btree_map.c", 460)
  pm.flush %n, 8 !loc("btree_map.c", 462)
  pm.flush %n, 8 !loc("btree_map.c", 465)
  pm.fence
  tx.end
  ret
}

define void @btree_map_clear_demo() {
entry:
  %node = pm.alloc %tree_node
  %n = gep %node, 0
  store i64 0, %n !loc("btree_map.c", 290)
  call @pmem_flush_helper(%node)
  ret
}
)";

constexpr const char* kBtreeMapFixed = R"(
module "pmdk/btree_map.fixed"
struct %tree_node { i64, i64, [4 x i64] }

define void @btree_map_create_split_node(%tree_node* %node) {
entry:
  tx.add %node, 48
  %items = gep %node, 2
  %slot = gep %items, 3
  store i64 0, %slot
  ret
}

define void @btree_map_insert_demo() {
entry:
  %parent = pm.alloc %tree_node
  %child = pm.alloc %tree_node
  tx.begin
  tx.add %parent, 48
  %n = gep %parent, 0
  store i64 5, %n
  call @btree_map_create_split_node(%child)
  pm.fence
  tx.end
  ret
}

define void @btree_map_insert_item_demo() {
entry:
  %node = pm.alloc %tree_node
  tx.begin
  tx.add %node, 48
  %n = gep %node, 0
  store i64 1, %n
  store i64 2, %n
  pm.persist %n, 8
  tx.end
  ret
}

define void @btree_map_remove_demo() {
entry:
  %node = pm.alloc %tree_node
  tx.begin
  tx.add %node, 48
  %n = gep %node, 0
  store i64 0, %n
  pm.flush %n, 8
  pm.fence
  tx.end
  ret
}

define void @btree_map_clear_demo() {
entry:
  %node = pm.alloc %tree_node
  %n = gep %node, 0
  store i64 0, %n
  pm.persist %n, 8
  ret
}
)";

// rbtree_map.c — logging unmodified nodes (197, 231), an object flushed but
// never fenced (379), and a repeated persist in a transaction (259).
constexpr const char* kRbtreeMap = R"(
module "pmdk/rbtree_map"
struct %rbnode { i64, i64 }

define void @rbtree_map_rotate_demo() {
entry:
  %a = pm.alloc %rbnode
  %b = pm.alloc %rbnode
  tx.begin !loc("rbtree_map.c", 190)
  tx.add %a, 16 !loc("rbtree_map.c", 197)
  tx.add %b, 16 !loc("rbtree_map.c", 199)
  %bf = gep %b, 0
  store i64 1, %bf !loc("rbtree_map.c", 203)
  pm.fence
  tx.end
  ret
}

define void @rbtree_map_recolor_demo() {
entry:
  %c = pm.alloc %rbnode
  %d = pm.alloc %rbnode
  tx.begin !loc("rbtree_map.c", 225)
  tx.add %c, 16 !loc("rbtree_map.c", 231)
  tx.add %d, 16 !loc("rbtree_map.c", 233)
  %df = gep %d, 0
  store i64 1, %df !loc("rbtree_map.c", 236)
  pm.fence
  tx.end
  ret
}

define void @rbtree_map_insert_demo() {
entry:
  %n = pm.alloc %rbnode
  tx.begin !loc("rbtree_map.c", 250)
  tx.add %n, 16
  %f = gep %n, 0
  store i64 1, %f !loc("rbtree_map.c", 255)
  pm.persist %f, 8 !loc("rbtree_map.c", 257)
  store i64 2, %f !loc("rbtree_map.c", 258)
  pm.persist %f, 8 !loc("rbtree_map.c", 259)
  tx.end
  ret
}

define void @rbtree_map_remove_fix_demo() {
entry:
  %n = pm.alloc %rbnode
  %f = gep %n, 0
  store i64 9, %f !loc("rbtree_map.c", 379)
  pm.flush %f, 8 !loc("rbtree_map.c", 381)
  ret
}
)";

constexpr const char* kRbtreeMapFixed = R"(
module "pmdk/rbtree_map.fixed"
struct %rbnode { i64, i64 }

define void @rbtree_map_rotate_demo() {
entry:
  %a = pm.alloc %rbnode
  %b = pm.alloc %rbnode
  tx.begin
  tx.add %b, 16
  %bf = gep %b, 0
  store i64 1, %bf
  pm.fence
  tx.end
  ret
}

define void @rbtree_map_recolor_demo() {
entry:
  %c = pm.alloc %rbnode
  %d = pm.alloc %rbnode
  tx.begin
  tx.add %d, 16
  %df = gep %d, 0
  store i64 1, %df
  pm.fence
  tx.end
  ret
}

define void @rbtree_map_insert_demo() {
entry:
  %n = pm.alloc %rbnode
  tx.begin
  tx.add %n, 16
  %f = gep %n, 0
  store i64 1, %f
  store i64 2, %f
  pm.persist %f, 8
  tx.end
  ret
}

define void @rbtree_map_remove_fix_demo() {
entry:
  %n = pm.alloc %rbnode
  %f = gep %n, 0
  store i64 9, %f
  pm.flush %f, 8
  pm.fence
  ret
}
)";

// pminvaders.c — Figure 7's durable transactions without persistent writes
// (256, 301, 249, 266, 351), flushing unmodified fields (246), and
// persisting the timer object repeatedly (143).
constexpr const char* kPminvaders = R"(
module "pmdk/pminvaders"
struct %alien { i64, i64 }

define void @timer_update_demo() {
entry:
  %a = pm.alloc %alien
  tx.begin !loc("pminvaders.c", 136)
  tx.add %a, 16
  %t = gep %a, 0
  store i64 100, %t !loc("pminvaders.c", 140)
  pm.persist %t, 8 !loc("pminvaders.c", 141)
  store i64 99, %t !loc("pminvaders.c", 142)
  pm.persist %t, 8 !loc("pminvaders.c", 143)
  tx.end
  ret
}

define void @draw_alien_demo() {
entry:
  %a = pm.alloc %alien
  %t = gep %a, 0
  store i64 1, %t !loc("pminvaders.c", 243)
  pm.persist %a, 16 !loc("pminvaders.c", 246)
  ret
}

define void @process_aliens_demo() {
entry:
  %a = pm.alloc %alien
  tx.begin !loc("pminvaders.c", 252)
  %c = eq 1, 0
  br %c, label %update, label %skip
update:
  %t = gep %a, 0
  store i64 100, %t !loc("pminvaders.c", 254)
  br label %skip
skip:
  pm.persist %a, 16 !loc("pminvaders.c", 256)
  tx.end
  ret
}

define void @process_bullets_demo() {
entry:
  %a = pm.alloc %alien
  tx.begin !loc("pminvaders.c", 297)
  %c = eq 1, 0
  br %c, label %update, label %skip
update:
  %t = gep %a, 0
  store i64 7, %t !loc("pminvaders.c", 299)
  br label %skip
skip:
  pm.persist %a, 16 !loc("pminvaders.c", 301)
  tx.end
  ret
}

define void @process_player_demo() {
entry:
  %a = pm.alloc %alien
  tx.begin !loc("pminvaders.c", 245)
  %c = eq 1, 0
  br %c, label %update, label %skip
update:
  %t = gep %a, 1
  store i64 3, %t !loc("pminvaders.c", 247)
  br label %skip
skip:
  pm.persist %a, 16 !loc("pminvaders.c", 249)
  tx.end
  ret
}

define void @update_score_demo() {
entry:
  %a = pm.alloc %alien
  tx.begin !loc("pminvaders.c", 262)
  %c = eq 1, 0
  br %c, label %update, label %skip
update:
  %t = gep %a, 0
  store i64 5, %t !loc("pminvaders.c", 264)
  br label %skip
skip:
  pm.persist %a, 16 !loc("pminvaders.c", 266)
  tx.end
  ret
}

define void @new_game_demo() {
entry:
  %a = pm.alloc %alien
  tx.begin !loc("pminvaders.c", 347)
  %c = eq 1, 0
  br %c, label %update, label %skip
update:
  %t = gep %a, 1
  store i64 1, %t !loc("pminvaders.c", 349)
  br label %skip
skip:
  pm.persist %a, 16 !loc("pminvaders.c", 351)
  tx.end
  ret
}
)";

constexpr const char* kPminvadersFixed = R"(
module "pmdk/pminvaders.fixed"
struct %alien { i64, i64 }

define void @timer_update_demo() {
entry:
  %a = pm.alloc %alien
  tx.begin
  tx.add %a, 16
  %t = gep %a, 0
  store i64 100, %t
  store i64 99, %t
  pm.persist %t, 8
  tx.end
  ret
}

define void @draw_alien_demo() {
entry:
  %a = pm.alloc %alien
  %t = gep %a, 0
  store i64 1, %t
  pm.persist %t, 8
  ret
}

define void @process_aliens_demo() {
entry:
  %a = pm.alloc %alien
  %c = eq 1, 0
  br %c, label %update, label %skip
update:
  tx.begin
  tx.add %a, 16
  %t = gep %a, 0
  store i64 100, %t
  pm.persist %t, 8
  tx.end
  br label %skip
skip:
  ret
}
)";

// obj_pmemlog.c — the log header updated across two transactions (91) and
// the dynamically-indexed chunk flush false positive (130).
constexpr const char* kObjPmemlog = R"(
module "pmdk/obj_pmemlog"
struct %loghdr { i64, i64 }
struct %chunks { [8 x i64], i64 }

define void @pmemlog_append_demo() {
entry:
  %hdr = pm.alloc %loghdr
  tx.begin !loc("obj_pmemlog.c", 80)
  tx.add %hdr, 16
  %off = gep %hdr, 0
  store i64 64, %off !loc("obj_pmemlog.c", 84)
  pm.fence
  tx.end
  tx.begin !loc("obj_pmemlog.c", 88)
  tx.add %hdr, 16
  %len = gep %hdr, 1
  store i64 8, %len !loc("obj_pmemlog.c", 91)
  pm.fence
  tx.end
  ret
}

define void @pmemlog_append_chunks_demo() {
entry:
  %c = pm.alloc %chunks
  %nfield = gep %c, 1
  %arr = gep %c, 0
  %i = load %nfield
  %e1 = gep %arr, %i
  store i64 1, %e1 !loc("obj_pmemlog.c", 124)
  pm.flush %e1, 8 !loc("obj_pmemlog.c", 126)
  %j = load %nfield
  %e2 = gep %arr, %j
  pm.flush %e2, 8 !loc("obj_pmemlog.c", 130)
  pm.fence
  ret
}
)";

constexpr const char* kObjPmemlogFixed = R"(
module "pmdk/obj_pmemlog.fixed"
struct %loghdr { i64, i64 }
struct %chunks { [8 x i64], i64 }

define void @pmemlog_append_demo() {
entry:
  %hdr = pm.alloc %loghdr
  tx.begin
  tx.add %hdr, 16
  %off = gep %hdr, 0
  store i64 64, %off
  %len = gep %hdr, 1
  store i64 8, %len
  pm.fence
  tx.end
  ret
}

define void @pmemlog_append_chunks_demo() {
entry:
  %c = pm.alloc %chunks
  %nfield = gep %c, 1
  %arr = gep %c, 0
  %i = load %nfield
  %e1 = gep %arr, %i
  store i64 1, %e1
  pm.flush %e1, 8
  pm.fence
  ret
}
)";

// hash_map.c — Figure 1's split initialization (120, 264) plus the
// context-insensitivity false positive (310): @hm_set is summarized once
// for two distinct buckets.
constexpr const char* kHashMap = R"(
module "pmdk/hash_map"
struct %hmap { i64, i64, i64 }
struct %bucket { i64, i64 }

define void @create_hashmap_demo() {
entry:
  %h = pm.alloc %hmap
  tx.begin !loc("hash_map.c", 110)
  tx.add %h, 24
  %nbuckets = gep %h, 0
  store i64 16, %nbuckets !loc("hash_map.c", 114)
  pm.fence
  tx.end
  tx.begin !loc("hash_map.c", 118)
  tx.add %h, 24
  %buckets = gep %h, 1
  store i64 1, %buckets !loc("hash_map.c", 120)
  pm.fence
  tx.end
  tx.begin !loc("hash_map.c", 260)
  tx.add %h, 24
  %seed = gep %h, 2
  store i64 7, %seed !loc("hash_map.c", 264)
  pm.fence
  tx.end
  ret
}

define i64 @hm_checksum(%bucket* %b) {
entry:
  %f = gep %b, 0
  %v = load %f
  ret %v
}

define void @hm_set_key(%bucket* %b) {
entry:
  %f = gep %b, 0
  store i64 1, %f !loc("hash_map.c", 305)
  pm.persist %f, 8 !loc("hash_map.c", 306)
  ret
}

define void @hm_set_val(%bucket* %b) {
entry:
  %f = gep %b, 1
  store i64 2, %f !loc("hash_map.c", 310)
  pm.persist %f, 8 !loc("hash_map.c", 312)
  ret
}

define void @rebuild_buckets_demo() {
entry:
  %a = pm.alloc %bucket
  %b = pm.alloc %bucket
  tx.begin !loc("hash_map.c", 330)
  tx.add %a, 16
  call @hm_set_key(%a)
  pm.fence
  tx.end
  tx.begin !loc("hash_map.c", 336)
  tx.add %b, 16
  call @hm_set_val(%b)
  pm.fence
  tx.end
  %c1 = call @hm_checksum(%a)
  %c2 = call @hm_checksum(%b)
  ret
}
)";

constexpr const char* kHashMapFixed = R"(
module "pmdk/hash_map.fixed"
struct %hmap { i64, i64, i64 }
struct %bucket { i64, i64 }

define void @create_hashmap_demo() {
entry:
  %h = pm.alloc %hmap
  tx.begin
  tx.add %h, 24
  %nbuckets = gep %h, 0
  store i64 16, %nbuckets
  %buckets = gep %h, 1
  store i64 1, %buckets
  %seed = gep %h, 2
  store i64 7, %seed
  pm.fence
  tx.end
  ret
}

define void @rebuild_buckets_demo() {
entry:
  %a = pm.alloc %bucket
  %b = pm.alloc %bucket
  tx.begin
  tx.add %a, 16
  %af = gep %a, 0
  store i64 1, %af
  pm.persist %af, 8
  pm.fence
  tx.end
  ret
}
)";

// hashmap_atomic.c — EXECUTABLE. The bucket directory stores a packed
// (integer-laundered) pointer, so static analysis cannot resolve which
// object the atomic update steps touch; the dynamic checker observes at
// runtime that consecutive steps update the same object (120, 264), that a
// bucket flush writes back no new data (285), and that an update step
// begins while flushes are unfenced (496).
constexpr const char* kHashmapAtomic = R"(
module "pmdk/hashmap_atomic"
struct %hmap { i64, i64, i64 }
struct %dir { i64 }

define i64 @hm_atomic_lookup(%dir* %d) {
entry:
  %slot = gep %d, 0
  %v = load %slot
  ret %v
}

define void @main() {
entry:
  %h = pm.alloc %hmap
  %d = pm.alloc %dir
  %slot = gep %d, 0
  %packed = add 0, %h
  store %packed, %slot !loc("hashmap_atomic.c", 95)
  pm.persist %slot, 8 !loc("hashmap_atomic.c", 96)
  epoch.begin !loc("hashmap_atomic.c", 115)
  %b1i = call @hm_atomic_lookup(%d)
  %b1 = cast %b1i to %hmap*
  %f0 = gep %b1, 0
  store i64 16, %f0 !loc("hashmap_atomic.c", 120)
  pm.persist %f0, 8 !loc("hashmap_atomic.c", 122)
  epoch.end
  epoch.begin !loc("hashmap_atomic.c", 260)
  %b2i = call @hm_atomic_lookup(%d)
  %b2 = cast %b2i to %hmap*
  %f1 = gep %b2, 1
  store i64 1, %f1 !loc("hashmap_atomic.c", 264)
  pm.persist %f1, 8 !loc("hashmap_atomic.c", 266)
  epoch.end
  epoch.begin !loc("hashmap_atomic.c", 280)
  %b3i = call @hm_atomic_lookup(%d)
  %b3 = cast %b3i to %hmap*
  %f0b = gep %b3, 0
  pm.flush %f0b, 8 !loc("hashmap_atomic.c", 285)
  pm.fence
  epoch.end
  %b4i = call @hm_atomic_lookup(%d)
  %b4 = cast %b4i to %hmap*
  %f2 = gep %b4, 2
  store i64 7, %f2 !loc("hashmap_atomic.c", 490)
  pm.flush %f2, 8 !loc("hashmap_atomic.c", 492)
  epoch.begin !loc("hashmap_atomic.c", 496)
  pm.fence
  epoch.end
  ret
}
)";

// obj_pmemlog_simple.c — EXECUTABLE. Same laundering pattern: the log
// header address is recomputed at runtime; two update steps write it (207)
// and a later step re-flushes clean header data (252).
constexpr const char* kObjPmemlogSimple = R"(
module "pmdk/obj_pmemlog_simple"
struct %loghdr { i64, i64 }
struct %dir { i64 }

define i64 @log_hdr_lookup(%dir* %d) {
entry:
  %slot = gep %d, 0
  %v = load %slot
  ret %v
}

define void @main() {
entry:
  %hdr = pm.alloc %loghdr
  %d = pm.alloc %dir
  %slot = gep %d, 0
  %packed = add 0, %hdr
  store %packed, %slot !loc("obj_pmemlog_simple.c", 60)
  pm.persist %slot, 8 !loc("obj_pmemlog_simple.c", 61)
  epoch.begin !loc("obj_pmemlog_simple.c", 200)
  %h1i = call @log_hdr_lookup(%d)
  %h1 = cast %h1i to %loghdr*
  %off = gep %h1, 0
  store i64 64, %off !loc("obj_pmemlog_simple.c", 205)
  pm.persist %off, 8 !loc("obj_pmemlog_simple.c", 206)
  epoch.end
  epoch.begin !loc("obj_pmemlog_simple.c", 203)
  %h2i = call @log_hdr_lookup(%d)
  %h2 = cast %h2i to %loghdr*
  %len = gep %h2, 1
  store i64 8, %len !loc("obj_pmemlog_simple.c", 207)
  pm.persist %len, 8 !loc("obj_pmemlog_simple.c", 209)
  epoch.end
  epoch.begin !loc("obj_pmemlog_simple.c", 248)
  %h3i = call @log_hdr_lookup(%d)
  %h3 = cast %h3i to %loghdr*
  %off2 = gep %h3, 0
  pm.flush %off2, 8 !loc("obj_pmemlog_simple.c", 252)
  pm.fence
  epoch.end
  ret
}
)";

// ===========================================================================
// PMFS (epoch persistency)
// ===========================================================================

constexpr const char* kJournal = R"(
module "pmfs/journal"
struct %jentry { i64, i64 }

define void @pmfs_commit_transaction_demo() {
entry:
  %je = pm.alloc %jentry
  epoch.begin !loc("journal.c", 620)
  %f = gep %je, 0
  store i64 1, %f !loc("journal.c", 625)
  pm.flush %f, 8 !loc("journal.c", 628)
  pm.flush %f, 8 !loc("journal.c", 632)
  pm.fence
  epoch.end
  ret
}
)";

constexpr const char* kJournalFixed = R"(
module "pmfs/journal.fixed"
struct %jentry { i64, i64 }

define void @pmfs_commit_transaction_demo() {
entry:
  %je = pm.alloc %jentry
  epoch.begin
  %f = gep %je, 0
  store i64 1, %f
  pm.flush %f, 8
  pm.fence
  epoch.end
  ret
}
)";

// symlink.c — Figure 4: pmfs_block_symlink's inner transaction ends with
// unfenced flushes.
constexpr const char* kSymlink = R"(
module "pmfs/symlink"
struct %symbuf { [8 x i64] }

define void @pmfs_block_symlink(%symbuf* %b) {
entry:
  tx.begin !loc("symlink.c", 30)
  %e0 = gep %b, 0
  store i64 42, %e0 !loc("symlink.c", 35)
  pm.flush %e0, 64 !loc("symlink.c", 38)
  tx.end
  ret
}

define void @pmfs_symlink_demo() {
entry:
  %b = pm.alloc %symbuf
  tx.begin !loc("namei.c", 100)
  call @pmfs_block_symlink(%b)
  pm.fence
  tx.end
  ret
}
)";

constexpr const char* kSymlinkFixed = R"(
module "pmfs/symlink.fixed"
struct %symbuf { [8 x i64] }

define void @pmfs_block_symlink(%symbuf* %b) {
entry:
  tx.begin
  %e0 = gep %b, 0
  store i64 42, %e0
  pm.flush %e0, 64
  pm.fence
  tx.end
  ret
}

define void @pmfs_symlink_demo() {
entry:
  %b = pm.alloc %symbuf
  tx.begin
  call @pmfs_block_symlink(%b)
  pm.fence
  tx.end
  ret
}
)";

constexpr const char* kXips = R"(
module "pmfs/xips"
struct %xipbuf { [8 x i64] }

define void @pmfs_xip_file_write_demo() {
entry:
  %b = pm.alloc %xipbuf
  epoch.begin !loc("xips.c", 195)
  %e0 = gep %b, 0
  store i64 3, %e0 !loc("xips.c", 200)
  pm.flush %e0, 64 !loc("xips.c", 203)
  pm.flush %e0, 64 !loc("xips.c", 207)
  pm.flush %e0, 64 !loc("xips.c", 262)
  pm.fence
  epoch.end
  ret
}
)";

constexpr const char* kXipsFixed = R"(
module "pmfs/xips.fixed"
struct %xipbuf { [8 x i64] }

define void @pmfs_xip_file_write_demo() {
entry:
  %b = pm.alloc %xipbuf
  epoch.begin
  %e0 = gep %b, 0
  store i64 3, %e0
  pm.flush %e0, 64
  pm.fence
  epoch.end
  ret
}
)";

constexpr const char* kFiles = R"(
module "pmfs/files"
struct %pmfs_inode { i64, i64 }

define void @pmfs_update_inode_demo() {
entry:
  %ino = pm.alloc %pmfs_inode
  pm.flush %ino, 16 !loc("files.c", 232)
  pm.fence
  ret
}
)";

constexpr const char* kFilesFixed = R"(
module "pmfs/files.fixed"
struct %pmfs_inode { i64, i64 }

define void @pmfs_update_inode_demo() {
entry:
  %ino = pm.alloc %pmfs_inode
  %f = gep %ino, 0
  store i64 1, %f
  pm.flush %f, 8
  pm.fence
  ret
}
)";

// super.c — superblock recovery flushes three never-written fields
// (542/543/579) and makes both superblock copies durable with one barrier
// (584).
constexpr const char* kSuper = R"(
module "pmfs/super"
struct %super { i64, i64, i64 }
struct %scopy { i64, i64 }

define void @pmfs_recover_super_demo() {
entry:
  %s = pm.alloc %super
  %copy = pm.alloc %scopy
  %sa = gep %s, 0
  pm.flush %sa, 8 !loc("super.c", 542)
  %sb = gep %s, 1
  pm.flush %sb, 8 !loc("super.c", 543)
  %cc = gep %copy, 0
  pm.flush %cc, 8 !loc("super.c", 579)
  %sx = gep %s, 2
  store i64 11, %sx !loc("super.c", 581)
  %cy = gep %copy, 1
  store i64 11, %cy !loc("super.c", 582)
  pm.flush %sx, 8 !loc("super.c", 583)
  pm.flush %cy, 8 !loc("super.c", 583)
  pm.fence !loc("super.c", 584)
  ret
}
)";

constexpr const char* kSuperFixed = R"(
module "pmfs/super.fixed"
struct %super { i64, i64, i64 }
struct %scopy { i64, i64 }

define void @pmfs_recover_super_demo() {
entry:
  %s = pm.alloc %super
  %copy = pm.alloc %scopy
  %sx = gep %s, 2
  store i64 11, %sx
  pm.flush %sx, 8
  pm.fence
  %cy = gep %copy, 1
  store i64 11, %cy
  pm.flush %cy, 8
  pm.fence
  ret
}
)";

// bbuild.c — FALSE POSITIVE: the two stores form one version-guarded
// logical update; making them durable together is intentional.
constexpr const char* kBbuild = R"(
module "pmfs/bbuild"
struct %binode { i64, i64 }

define void @pmfs_rebuild_demo() {
entry:
  %ino = pm.alloc %binode
  %f0 = gep %ino, 0
  store i64 1, %f0 !loc("bbuild.c", 205)
  %f1 = gep %ino, 1
  store i64 2, %f1 !loc("bbuild.c", 207)
  pm.flush %f0, 8 !loc("bbuild.c", 208)
  pm.flush %f1, 8 !loc("bbuild.c", 209)
  pm.fence !loc("bbuild.c", 210)
  ret
}
)";

constexpr const char* kBbuildFixed = R"(
module "pmfs/bbuild.fixed"
struct %binode { i64, i64 }

define void @pmfs_rebuild_demo() {
entry:
  %ino = pm.alloc %binode
  %f0 = gep %ino, 0
  store i64 1, %f0
  pm.flush %f0, 8
  pm.fence
  %f1 = gep %ino, 1
  store i64 2, %f1
  pm.flush %f1, 8
  pm.fence
  ret
}
)";

// inode.c — FALSE POSITIVE: the inode is filled by an external function the
// analysis cannot see into.
constexpr const char* kInode = R"(
module "pmfs/inode"
struct %pmfs_inode { i64, i64 }
declare void @external_fill(%pmfs_inode*)

define void @pmfs_write_inode_demo() {
entry:
  %ino = pm.alloc %pmfs_inode
  call @external_fill(%ino)
  pm.flush %ino, 16 !loc("inode.c", 150)
  pm.fence
  ret
}
)";

constexpr const char* kInodeFixed = R"(
module "pmfs/inode.fixed"
struct %pmfs_inode { i64, i64 }

define void @pmfs_write_inode_demo() {
entry:
  %ino = pm.alloc %pmfs_inode
  %f0 = gep %ino, 0
  store i64 1, %f0
  pm.persist %f0, 8
  %f1 = gep %ino, 1
  store i64 2, %f1
  pm.persist %f1, 8
  ret
}
)";

// ===========================================================================
// NVM-Direct (strict persistency)
// ===========================================================================

// nvm_region.c — Figure 3 at two sites (614, 933) and the external-init
// false positive (700).
constexpr const char* kNvmRegion = R"(
module "nvmdirect/nvm_region"
struct %region { i64, i64 }
declare void @external_init_region(%region*)

define void @nvm_create_region_demo() {
entry:
  %r = pm.alloc %region
  %other = pm.alloc %region
  %f0 = gep %r, 0
  store i64 7, %f0 !loc("nvm_region.c", 610)
  pm.flush %f0, 8 !loc("nvm_region.c", 614)
  tx.begin !loc("nvm_region.c", 620)
  tx.add %other, 16
  %g0 = gep %other, 0
  store i64 1, %g0 !loc("nvm_region.c", 623)
  pm.fence
  tx.end
  ret
}

define void @nvm_destroy_region_demo() {
entry:
  %r = pm.alloc %region
  %other = pm.alloc %region
  %f0 = gep %r, 0
  store i64 0, %f0 !loc("nvm_region.c", 929)
  pm.flush %f0, 8 !loc("nvm_region.c", 933)
  tx.begin !loc("nvm_region.c", 938)
  tx.add %other, 16
  %g0 = gep %other, 1
  store i64 2, %g0 !loc("nvm_region.c", 941)
  pm.fence
  tx.end
  ret
}

define void @nvm_attach_region_demo() {
entry:
  %r = pm.alloc %region
  call @external_init_region(%r)
  pm.flush %r, 16 !loc("nvm_region.c", 700)
  pm.fence
  ret
}
)";

constexpr const char* kNvmRegionFixed = R"(
module "nvmdirect/nvm_region.fixed"
struct %region { i64, i64 }

define void @nvm_create_region_demo() {
entry:
  %r = pm.alloc %region
  %other = pm.alloc %region
  %f0 = gep %r, 0
  store i64 7, %f0
  pm.flush %f0, 8
  pm.fence
  tx.begin
  tx.add %other, 16
  %g0 = gep %other, 0
  store i64 1, %g0
  pm.fence
  tx.end
  ret
}

define void @nvm_attach_region_demo() {
entry:
  %r = pm.alloc %region
  %f0 = gep %r, 0
  store i64 1, %f0
  pm.persist %f0, 8
  %f1 = gep %r, 1
  store i64 2, %f1
  pm.persist %f1, 8
  ret
}
)";

// nvm_heap.c — Figure 6's double flush (1965) and a whole-object flush
// with one field written (1675).
constexpr const char* kNvmHeap = R"(
module "nvmdirect/nvm_heap"
struct %blk { i64, i64 }
struct %heap { i64, i64, i64 }

define void @nvm_free_blk(%blk* %b) {
entry:
  %f0 = gep %b, 0
  store i64 0, %f0 !loc("nvm_heap.c", 1950)
  pm.flush %f0, 8 !loc("nvm_heap.c", 1955)
  ret
}

define void @nvm_free_callback_demo() {
entry:
  %b = pm.alloc %blk
  call @nvm_free_blk(%b)
  %f0 = gep %b, 0
  pm.flush %f0, 8 !loc("nvm_heap.c", 1965)
  pm.fence
  ret
}

define void @nvm_heap_init_demo() {
entry:
  %h = pm.alloc %heap
  %f0 = gep %h, 0
  store i64 1, %f0 !loc("nvm_heap.c", 1670)
  pm.persist %h, 24 !loc("nvm_heap.c", 1675)
  ret
}
)";

constexpr const char* kNvmHeapFixed = R"(
module "nvmdirect/nvm_heap.fixed"
struct %blk { i64, i64 }
struct %heap { i64, i64, i64 }

define void @nvm_free_blk(%blk* %b) {
entry:
  %f0 = gep %b, 0
  store i64 0, %f0
  pm.flush %f0, 8
  ret
}

define void @nvm_free_callback_demo() {
entry:
  %b = pm.alloc %blk
  call @nvm_free_blk(%b)
  pm.fence
  ret
}

define void @nvm_heap_init_demo() {
entry:
  %h = pm.alloc %heap
  %f0 = gep %h, 0
  store i64 1, %f0
  pm.persist %f0, 8
  ret
}
)";

// nvm_locks.c — Figure 9's unflushed new_level (932), a whole-lock persist
// with one field written (1411), and an empty durable transaction (905).
constexpr const char* kNvmLocks = R"(
module "nvmdirect/nvm_locks"
struct %nvm_lk { i64, i64, i64 }
struct %nvm_amutex { i64, i64 }

define void @nvm_lock_demo() {
entry:
  %lk = pm.alloc %nvm_lk
  %state = gep %lk, 0
  store i64 1, %state !loc("nvm_locks.c", 925)
  pm.persist %state, 8 !loc("nvm_locks.c", 926)
  %c = eq 1, 1
  br %c, label %raise, label %acquire
raise:
  %level = gep %lk, 2
  store i64 5, %level !loc("nvm_locks.c", 932)
  br label %acquire
acquire:
  store i64 2, %state !loc("nvm_locks.c", 936)
  pm.persist %state, 8 !loc("nvm_locks.c", 937)
  ret
}

define void @nvm_unlock_demo() {
entry:
  %lk = pm.alloc %nvm_lk
  %state = gep %lk, 0
  store i64 0, %state !loc("nvm_locks.c", 1405)
  pm.persist %lk, 24 !loc("nvm_locks.c", 1411)
  ret
}

define void @nvm_lock_cleanup_demo() {
entry:
  %m = pm.alloc %nvm_amutex
  tx.begin !loc("nvm_locks.c", 900)
  pm.persist %m, 16 !loc("nvm_locks.c", 905)
  tx.end
  ret
}
)";

constexpr const char* kNvmLocksFixed = R"(
module "nvmdirect/nvm_locks.fixed"
struct %nvm_lk { i64, i64, i64 }
struct %nvm_amutex { i64, i64 }

define void @nvm_lock_demo() {
entry:
  %lk = pm.alloc %nvm_lk
  %state = gep %lk, 0
  store i64 1, %state
  pm.persist %state, 8
  %c = eq 1, 1
  br %c, label %raise, label %acquire
raise:
  %level = gep %lk, 2
  store i64 5, %level
  pm.persist %level, 8
  br label %acquire
acquire:
  store i64 2, %state
  pm.persist %state, 8
  ret
}

define void @nvm_unlock_demo() {
entry:
  %lk = pm.alloc %nvm_lk
  %state = gep %lk, 0
  store i64 0, %state
  pm.persist %state, 8
  ret
}

define void @nvm_lock_cleanup_demo() {
entry:
  %m = pm.alloc %nvm_amutex
  tx.begin
  tx.add %m, 16
  %f0 = gep %m, 0
  store i64 0, %f0
  pm.persist %f0, 8
  tx.end
  ret
}
)";

// nvm_tx.c — FALSE POSITIVE: the undo records are applied by an external
// function, so the transaction is not actually empty.
constexpr const char* kNvmTx = R"(
module "nvmdirect/nvm_tx"
struct %undo { i64, i64 }
declare void @external_apply_undo(%undo*)

define void @nvm_txend_demo() {
entry:
  %u = pm.alloc %undo
  tx.begin !loc("nvm_tx.c", 445)
  call @external_apply_undo(%u)
  pm.persist %u, 16 !loc("nvm_tx.c", 450)
  tx.end
  ret
}
)";

constexpr const char* kNvmTxFixed = R"(
module "nvmdirect/nvm_tx.fixed"
struct %undo { i64, i64 }

define void @nvm_txend_demo() {
entry:
  %u = pm.alloc %undo
  tx.begin
  tx.add %u, 16
  %f0 = gep %u, 0
  store i64 1, %f0
  pm.persist %f0, 8
  tx.end
  ret
}
)";

// ===========================================================================
// Mnemosyne (epoch persistency)
// ===========================================================================

constexpr const char* kPhlogBase = R"(
module "mnemosyne/phlog_base"
struct %phlog { i64, i64 }

define void @phlog_append_demo() {
entry:
  %log = pm.alloc %phlog
  epoch.begin !loc("phlog_base.c", 125)
  %word = gep %log, 1
  store i64 77, %word !loc("phlog_base.c", 132)
  epoch.end
  ret
}
)";

constexpr const char* kPhlogBaseFixed = R"(
module "mnemosyne/phlog_base.fixed"
struct %phlog { i64, i64 }

define void @phlog_append_demo() {
entry:
  %log = pm.alloc %phlog
  epoch.begin
  %word = gep %log, 1
  store i64 77, %word
  pm.flush %word, 8
  pm.fence
  epoch.end
  ret
}
)";

constexpr const char* kChhash = R"(
module "mnemosyne/chhash"
struct %hentry { i64, i64 }

define void @chhash_insert_demo() {
entry:
  %e = pm.alloc %hentry
  epoch.begin !loc("chhash.c", 175)
  %f = gep %e, 0
  store i64 1, %f !loc("chhash.c", 180)
  pm.persist %f, 8 !loc("chhash.c", 182)
  store i64 2, %f !loc("chhash.c", 184)
  pm.persist %f, 8 !loc("chhash.c", 185)
  store i64 3, %f !loc("chhash.c", 268)
  pm.persist %f, 8 !loc("chhash.c", 270)
  epoch.end
  ret
}
)";

constexpr const char* kChhashFixed = R"(
module "mnemosyne/chhash.fixed"
struct %hentry { i64, i64 }

define void @chhash_insert_demo() {
entry:
  %e = pm.alloc %hentry
  epoch.begin
  %f = gep %e, 0
  store i64 1, %f
  store i64 2, %f
  store i64 3, %f
  pm.persist %f, 8
  epoch.end
  ret
}
)";

constexpr const char* kCHash = R"(
module "mnemosyne/CHash"
struct %cbucket { i64, i64 }

define void @chash_rehash_demo() {
entry:
  %b = pm.alloc %cbucket
  epoch.begin !loc("CHash.c", 140)
  %f = gep %b, 0
  store i64 5, %f !loc("CHash.c", 145)
  pm.flush %f, 8 !loc("CHash.c", 147)
  pm.flush %f, 8 !loc("CHash.c", 150)
  pm.fence
  epoch.end
  ret
}
)";

constexpr const char* kCHashFixed = R"(
module "mnemosyne/CHash.fixed"
struct %cbucket { i64, i64 }

define void @chash_rehash_demo() {
entry:
  %b = pm.alloc %cbucket
  epoch.begin
  %f = gep %b, 0
  store i64 5, %f
  pm.flush %f, 8
  pm.fence
  epoch.end
  ret
}
)";

const std::map<std::string, ModuleSpec>& specs() {
  static const std::map<std::string, ModuleSpec> s = {
      {"pmdk/btree_map", {Framework::kPmdk, false, kBtreeMap, kBtreeMapFixed}},
      {"pmdk/rbtree_map",
       {Framework::kPmdk, false, kRbtreeMap, kRbtreeMapFixed}},
      {"pmdk/pminvaders",
       {Framework::kPmdk, false, kPminvaders, kPminvadersFixed}},
      {"pmdk/obj_pmemlog",
       {Framework::kPmdk, false, kObjPmemlog, kObjPmemlogFixed}},
      {"pmdk/hash_map", {Framework::kPmdk, false, kHashMap, kHashMapFixed}},
      {"pmdk/hashmap_atomic",
       {Framework::kPmdk, true, kHashmapAtomic, nullptr}},
      {"pmdk/obj_pmemlog_simple",
       {Framework::kPmdk, true, kObjPmemlogSimple, nullptr}},
      {"pmfs/journal", {Framework::kPmfs, false, kJournal, kJournalFixed}},
      {"pmfs/symlink", {Framework::kPmfs, false, kSymlink, kSymlinkFixed}},
      {"pmfs/xips", {Framework::kPmfs, false, kXips, kXipsFixed}},
      {"pmfs/files", {Framework::kPmfs, false, kFiles, kFilesFixed}},
      {"pmfs/super", {Framework::kPmfs, false, kSuper, kSuperFixed}},
      {"pmfs/bbuild", {Framework::kPmfs, false, kBbuild, kBbuildFixed}},
      {"pmfs/inode", {Framework::kPmfs, false, kInode, kInodeFixed}},
      {"nvmdirect/nvm_region",
       {Framework::kNvmDirect, false, kNvmRegion, kNvmRegionFixed}},
      {"nvmdirect/nvm_heap",
       {Framework::kNvmDirect, false, kNvmHeap, kNvmHeapFixed}},
      {"nvmdirect/nvm_locks",
       {Framework::kNvmDirect, false, kNvmLocks, kNvmLocksFixed}},
      {"nvmdirect/nvm_tx", {Framework::kNvmDirect, false, kNvmTx, kNvmTxFixed}},
      {"mnemosyne/phlog_base",
       {Framework::kMnemosyne, false, kPhlogBase, kPhlogBaseFixed}},
      {"mnemosyne/chhash", {Framework::kMnemosyne, false, kChhash, kChhashFixed}},
      {"mnemosyne/CHash", {Framework::kMnemosyne, false, kCHash, kCHashFixed}},
  };
  return s;
}

}  // namespace

CorpusModule build_module(const std::string& name) {
  auto it = specs().find(name);
  if (it == specs().end())
    throw std::invalid_argument("unknown corpus module: " + name);
  CorpusModule cm;
  cm.name = name;
  cm.framework = it->second.framework;
  cm.executable = it->second.executable;
  cm.module = ir::parse_module(it->second.text);
  ir::verify_or_throw(*cm.module);
  return cm;
}

std::vector<std::string> module_names() {
  std::vector<std::string> out;
  for (const auto& [name, spec] : specs()) out.push_back(name);
  return out;
}

std::vector<CorpusModule> build_corpus() {
  std::vector<CorpusModule> out;
  for (const auto& [name, spec] : specs()) out.push_back(build_module(name));
  return out;
}

std::unique_ptr<ir::Module> build_fixed_module(const std::string& name) {
  auto it = specs().find(name);
  if (it == specs().end() || !it->second.fixed_text)
    throw std::invalid_argument("no fixed variant for: " + name);
  auto m = ir::parse_module(it->second.fixed_text);
  ir::verify_or_throw(*m);
  return m;
}

std::vector<std::string> fixed_module_names() {
  std::vector<std::string> out;
  for (const auto& [name, spec] : specs())
    if (spec.fixed_text) out.push_back(name);
  return out;
}

}  // namespace deepmc::corpus
