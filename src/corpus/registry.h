// Registry of every warning site in the reproduction corpus.
//
// One entry per warning DeepMC reports in the paper's evaluation:
//   * the 19 studied bugs of Table 3,
//   * the 24 newly-found bugs of Table 8 (6 of them dynamic-only), and
//   * 7 false-positive sites (50 warnings − 43 validated bugs, §5.4).
//
// Every entry names the paper's file:line; the corpus modules
// (src/corpus/modules.cpp) attach exactly these locations to the seeded
// MIR so that checker reports can be matched against the paper row by row.
//
// Category reconciliation: the paper's Tables 1, 3 and 8 do not fully
// agree with each other (e.g. summing the per-file rows of Tables 3+8
// gives more "semantic mismatch" bugs than Table 1's 6/7 for PMDK). We
// treat Table 1 — the headline result — as ground truth for the
// category × framework matrix and adjust the category label of two PMDK
// Table 8 rows (hashmap_atomic.c:285 and obj_pmemlog_simple.c:252 are
// counted as "multiple flushes" here). See EXPERIMENTS.md for the full
// reconciliation notes.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/model.h"

namespace deepmc::corpus {

enum class Framework : uint8_t { kPmdk, kPmfs, kNvmDirect, kMnemosyne };
const char* framework_name(Framework f);
/// The persistency model each framework implements (paper Table 1 caption).
core::PersistencyModel framework_model(Framework f);

enum class Provenance : uint8_t {
  kStudied,        ///< Table 3 (characterization study)
  kNewlyFound,     ///< Table 8 (new bugs found by DeepMC)
  kFalsePositive,  ///< warning validated as not-a-bug (§5.4)
};
const char* provenance_name(Provenance p);

enum class Detector : uint8_t { kStatic, kDynamic };

enum class BugLocation : uint8_t { kLib, kExample };

struct BugSite {
  std::string file;  ///< paper-cited file name, e.g. "btree_map.c"
  uint32_t line;
  Framework framework;
  core::BugCategory category;
  BugLocation location;
  Provenance provenance;
  Detector detector;
  double years;               ///< bug age (Table 8 only; 0 otherwise)
  std::string expected_rule;  ///< static rule id, or dynamic report kind:
                              ///< "rt.epoch-mismatch" / "rt.redundant-flush"
                              ///< / "rt.missing-barrier"
  std::string description;    ///< the paper's bug description
  std::string module_name;    ///< corpus module carrying this site

  [[nodiscard]] bool validated() const {
    return provenance != Provenance::kFalsePositive;
  }
  [[nodiscard]] std::string loc_str() const {
    return file + ":" + std::to_string(line);
  }
};

/// The full 50-site registry.
const std::vector<BugSite>& registry();

/// Sites filtered by predicate helpers.
std::vector<const BugSite*> sites_of(Framework f);
std::vector<const BugSite*> sites_of(Provenance p);
std::vector<const BugSite*> static_sites();
std::vector<const BugSite*> dynamic_sites();

}  // namespace deepmc::corpus
