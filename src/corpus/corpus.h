// Corpus construction: one MIR module per paper source file, carrying the
// seeded bugs of registry.h at the paper-cited locations.
//
// Modules mirror the structure of the original code: a "library" or
// "example program" layer (the functions named after the paper's
// functions) plus driver roots standing in for the 16 NVM programs the
// paper analyzes. Two PMDK modules (hashmap_atomic, obj_pmemlog_simple)
// are *executable* — they carry @main and their bugs are only observable
// dynamically (runtime-resolved addresses), reproducing the paper's 6
// dynamically-discovered bugs.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "corpus/registry.h"
#include "ir/module.h"

namespace deepmc::corpus {

struct CorpusModule {
  std::string name;  ///< e.g. "pmdk/btree_map"
  Framework framework;
  std::unique_ptr<ir::Module> module;
  bool executable = false;  ///< has @main; run under the dynamic checker
};

/// Build every corpus module (parsed and verified).
std::vector<CorpusModule> build_corpus();

/// Build one module by name; throws std::invalid_argument for unknown names.
CorpusModule build_module(const std::string& name);

/// All module names, in registry order.
std::vector<std::string> module_names();

/// A bug-free ("fixed") variant of the named module, used to validate that
/// the checker reports nothing once the seeded bugs are repaired. Provided
/// for every non-executable module.
std::unique_ptr<ir::Module> build_fixed_module(const std::string& name);

/// Names of modules that have fixed variants.
std::vector<std::string> fixed_module_names();

}  // namespace deepmc::corpus
