// Clean NVM programs — the rest of the "16 NVM programs" the paper
// analyzes. These are correct, idiomatic uses of each framework's
// persistence discipline: the static checker must report nothing on them
// (precision guard), they execute to completion under the interpreter,
// and their data survives worst-case crashes (correctness guard).
#include "corpus/clean_programs.h"

#include <map>
#include <stdexcept>

#include "ir/parser.h"
#include "ir/verifier.h"

namespace deepmc::corpus {

namespace {

// PMDK-style persistent queue (ring buffer), every update logged.
constexpr const char* kPmdkQueue = R"(
module "clean/pmdk_queue"
struct %queue { i64, i64, [8 x i64] }

define void @queue_push(%queue* %q, i64 %v) {
entry:
  %countp = gep %q, 1
  %count = load %countp
  %c = lt %count, 8
  br %c, label %do, label %skip
do:
  tx.begin
  tx.add %q, 80
  %headp = gep %q, 0
  %head = load %headp
  %slot_idx = add %head, %count
  %arr = gep %q, 2
  %slot = gep %arr, %slot_idx
  store %v, %slot
  %count2 = add %count, 1
  store %count2, %countp
  pm.fence
  tx.end
  br label %skip
skip:
  ret
}

define i64 @queue_pop(%queue* %q) {
entry:
  %countp = gep %q, 1
  %count = load %countp
  %c = eq %count, 0
  br %c, label %empty, label %do
do:
  tx.begin
  tx.add %q, 80
  %headp = gep %q, 0
  %head = load %headp
  %arr = gep %q, 2
  %slot = gep %arr, %head
  %v = load %slot
  %head2 = add %head, 1
  store %head2, %headp
  %count2 = sub %count, 1
  store %count2, %countp
  pm.fence
  tx.end
  ret %v
empty:
  ret 0
}

define i64 @main() {
entry:
  %q = pm.alloc %queue
  tx.begin
  tx.add %q, 80
  %h = gep %q, 0
  store i64 0, %h
  %n = gep %q, 1
  store i64 0, %n
  pm.fence
  tx.end
  call @queue_push(%q, i64 10)
  call @queue_push(%q, i64 20)
  call @queue_push(%q, i64 30)
  %a = call @queue_pop(%q)
  %b = call @queue_pop(%q)
  %s = add %a, %b
  ret %s
}
)";

// PMDK-style stack with per-push persist discipline (strict model without
// transactions: one write, one persist).
constexpr const char* kPmdkStack = R"(
module "clean/pmdk_stack"
struct %stack { i64, [8 x i64] }

define void @stack_push(%stack* %s, i64 %v) {
entry:
  %topp = gep %s, 0
  %top = load %topp
  %c = lt %top, 8
  br %c, label %do, label %skip
do:
  %arr = gep %s, 1
  %slot = gep %arr, %top
  store %v, %slot
  pm.persist %slot, 8
  %top2 = add %top, 1
  store %top2, %topp
  pm.persist %topp, 8
  br label %skip
skip:
  ret
}

define i64 @main() {
entry:
  %s = pm.alloc %stack
  %topp = gep %s, 0
  store i64 0, %topp
  pm.persist %topp, 8
  call @stack_push(%s, i64 5)
  call @stack_push(%s, i64 7)
  %top = load %topp
  ret %top
}
)";

// Mnemosyne-style append-only log: epoch per append, flush then barrier.
constexpr const char* kMnemosyneLog = R"(
module "clean/mnemosyne_log"
struct %wal { i64, [16 x i64] }

define void @wal_append(%wal* %w, i64 %v) {
entry:
  epoch.begin
  %lenp = gep %w, 0
  %len = load %lenp
  %c = lt %len, 16
  br %c, label %do, label %skip
do:
  %arr = gep %w, 1
  %slot = gep %arr, %len
  store %v, %slot
  pm.flush %slot, 8
  %len2 = add %len, 1
  store %len2, %lenp
  pm.flush %lenp, 8
  pm.fence
  br label %skip
skip:
  epoch.end
  ret
}

define i64 @main() {
entry:
  %w = pm.alloc %wal
  epoch.begin
  %lenp = gep %w, 0
  store i64 0, %lenp
  pm.flush %lenp, 8
  pm.fence
  epoch.end
  call @wal_append(%w, i64 11)
  call @wal_append(%w, i64 22)
  call @wal_append(%w, i64 33)
  %len = load %lenp
  ret %len
}
)";

// PMFS-style block writer: data epoch, then metadata epoch, barrier each.
constexpr const char* kPmfsWriter = R"(
module "clean/pmfs_writer"
struct %fblock { [8 x i64] }
struct %finode { i64, i64 }

define void @file_write(%finode* %ino, %fblock* %blk, i64 %v, i64 %size) {
entry:
  epoch.begin
  %arr = gep %blk, 0
  %b0 = gep %arr, 0
  store %v, %b0
  pm.flush %blk, 64
  pm.fence
  epoch.end
  epoch.begin
  %sizep = gep %ino, 0
  store %size, %sizep
  pm.flush %sizep, 8
  pm.fence
  epoch.end
  ret
}

define i64 @main() {
entry:
  %ino = pm.alloc %finode
  %blk = pm.alloc %fblock
  epoch.begin
  %sizep = gep %ino, 0
  store i64 0, %sizep
  pm.flush %sizep, 8
  pm.fence
  epoch.end
  call @file_write(%ino, %blk, i64 99, i64 8)
  %size = load %sizep
  ret %size
}
)";

// NVM-Direct-style counter: strict persist-per-update, distinct objects
// across transactions.
constexpr const char* kNvmCounter = R"(
module "clean/nvm_counter"
struct %counter { i64, i64 }

define void @bump(%counter* %c) {
entry:
  %vp = gep %c, 0
  %v = load %vp
  %v2 = add %v, 1
  store %v2, %vp
  pm.persist %vp, 8
  %gp = gep %c, 1
  %g = load %gp
  %g2 = add %g, 2
  store %g2, %gp
  pm.persist %gp, 8
  ret
}

define i64 @main() {
entry:
  %c = pm.alloc %counter
  %vp = gep %c, 0
  store i64 0, %vp
  pm.persist %vp, 8
  %gp = gep %c, 1
  store i64 0, %gp
  pm.persist %gp, 8
  call @bump(%c)
  call @bump(%c)
  call @bump(%c)
  %v = load %vp
  ret %v
}
)";

// Strand-model batch: disjoint slots updated in concurrent strands, sealed
// with one barrier — correct strand persistency.
constexpr const char* kStrandBatch = R"(
module "clean/strand_batch"
struct %shards { i64, i64, i64, i64 }

define i64 @main() {
entry:
  %s = pm.alloc %shards
  strand.begin
  %a = gep %s, 0
  store i64 1, %a
  pm.flush %a, 8
  strand.end
  strand.begin
  %b = gep %s, 1
  store i64 2, %b
  pm.flush %b, 8
  strand.end
  strand.begin
  %c = gep %s, 2
  store i64 3, %c
  pm.flush %c, 8
  strand.end
  pm.fence
  %v = load %a
  ret %v
}
)";

const std::map<std::string, const char*>& clean_specs() {
  static const std::map<std::string, const char*> s = {
      {"clean/pmdk_queue", kPmdkQueue},
      {"clean/pmdk_stack", kPmdkStack},
      {"clean/mnemosyne_log", kMnemosyneLog},
      {"clean/pmfs_writer", kPmfsWriter},
      {"clean/nvm_counter", kNvmCounter},
      {"clean/strand_batch", kStrandBatch},
  };
  return s;
}

}  // namespace

std::vector<std::string> clean_program_names() {
  std::vector<std::string> out;
  for (const auto& [name, text] : clean_specs()) out.push_back(name);
  return out;
}

CleanProgram build_clean_program(const std::string& name) {
  auto it = clean_specs().find(name);
  if (it == clean_specs().end())
    throw std::invalid_argument("unknown clean program: " + name);
  CleanProgram p;
  p.name = name;
  p.model = name == "clean/pmdk_queue" || name == "clean/pmdk_stack" ||
                    name == "clean/nvm_counter"
                ? core::PersistencyModel::kStrict
            : name == "clean/strand_batch" ? core::PersistencyModel::kStrand
                                           : core::PersistencyModel::kEpoch;
  p.module = ir::parse_module(it->second);
  ir::verify_or_throw(*p.module);
  return p;
}

std::vector<CleanProgram> build_clean_programs() {
  std::vector<CleanProgram> out;
  for (const std::string& name : clean_program_names())
    out.push_back(build_clean_program(name));
  return out;
}

}  // namespace deepmc::corpus
