#include "corpus/registry.h"

namespace deepmc::corpus {

using core::BugCategory;
using core::PersistencyModel;

const char* framework_name(Framework f) {
  switch (f) {
    case Framework::kPmdk: return "PMDK";
    case Framework::kPmfs: return "PMFS";
    case Framework::kNvmDirect: return "NVM-Direct";
    case Framework::kMnemosyne: return "Mnemosyne";
  }
  return "?";
}

PersistencyModel framework_model(Framework f) {
  switch (f) {
    case Framework::kPmdk:
    case Framework::kNvmDirect:
      return PersistencyModel::kStrict;
    case Framework::kPmfs:
    case Framework::kMnemosyne:
      return PersistencyModel::kEpoch;
  }
  return PersistencyModel::kStrict;
}

const char* provenance_name(Provenance p) {
  switch (p) {
    case Provenance::kStudied: return "studied (Table 3)";
    case Provenance::kNewlyFound: return "new (Table 8)";
    case Provenance::kFalsePositive: return "false positive";
  }
  return "?";
}

namespace {

std::vector<BugSite> make_registry() {
  using F = Framework;
  using C = BugCategory;
  using P = Provenance;
  using D = Detector;
  using L = BugLocation;
  std::vector<BugSite> r;
  auto add = [&](const char* file, uint32_t line, F fw, C cat, L loc, P prov,
                 D det, double years, const char* rule, const char* desc,
                 const char* mod) {
    r.push_back(BugSite{file, line, fw, cat, loc, prov, det, years, rule,
                        desc, mod});
  };

  // =========================================================================
  // PMDK (strict persistency) — 26 warnings: 23 validated (11 studied from
  // Table 3, 12 new from Table 8) + 3 false positives.
  // =========================================================================
  // --- studied (Table 3) ---
  add("btree_map.c", 201, F::kPmdk, C::kUnflushedWrite, L::kExample,
      P::kStudied, D::kStatic, 0, "strict.unflushed-write",
      "Modify tree node without making it durable", "pmdk/btree_map");
  add("rbtree_map.c", 197, F::kPmdk, C::kFlushUnmodified, L::kExample,
      P::kStudied, D::kStatic, 0, "perf.log-unmodified",
      "Log unmodified fields of a tree node", "pmdk/rbtree_map");
  add("rbtree_map.c", 231, F::kPmdk, C::kFlushUnmodified, L::kExample,
      P::kStudied, D::kStatic, 0, "perf.log-unmodified",
      "Log unmodified fields of a tree node", "pmdk/rbtree_map");
  add("rbtree_map.c", 379, F::kPmdk, C::kMissingBarrier, L::kExample,
      P::kStudied, D::kStatic, 0, "strict.missing-barrier",
      "Modified object not made durable", "pmdk/rbtree_map");
  add("pminvaders.c", 256, F::kPmdk, C::kEmptyDurableTx, L::kExample,
      P::kStudied, D::kStatic, 0, "perf.empty-durable-tx",
      "Durable transaction without persistent writes", "pmdk/pminvaders");
  add("pminvaders.c", 301, F::kPmdk, C::kEmptyDurableTx, L::kExample,
      P::kStudied, D::kStatic, 0, "perf.empty-durable-tx",
      "Durable transaction without persistent writes", "pmdk/pminvaders");
  add("pminvaders.c", 246, F::kPmdk, C::kFlushUnmodified, L::kExample,
      P::kStudied, D::kStatic, 0, "perf.flush-unmodified",
      "Flush unmodified fields of an object", "pmdk/pminvaders");
  add("pminvaders.c", 143, F::kPmdk, C::kPersistSameObjectInTx, L::kExample,
      P::kStudied, D::kStatic, 0, "perf.persist-same-object",
      "Persist the same object repeatedly in a transaction",
      "pmdk/pminvaders");
  add("obj_pmemlog.c", 91, F::kPmdk, C::kSemanticMismatch, L::kLib,
      P::kStudied, D::kStatic, 0, "model.semantic-mismatch",
      "Multiple epochs writing to different fields of an object",
      "pmdk/obj_pmemlog");
  add("hash_map.c", 120, F::kPmdk, C::kSemanticMismatch, L::kExample,
      P::kStudied, D::kStatic, 0, "model.semantic-mismatch",
      "Multiple epochs writing to different fields of an object",
      "pmdk/hash_map");
  add("hash_map.c", 264, F::kPmdk, C::kSemanticMismatch, L::kExample,
      P::kStudied, D::kStatic, 0, "model.semantic-mismatch",
      "Multiple epochs writing to different fields of an object",
      "pmdk/hash_map");
  // --- new (Table 8, PMDK v1.2, 4.4 years) ---
  add("btree_map.c", 365, F::kPmdk, C::kPersistSameObjectInTx, L::kExample,
      P::kNewlyFound, D::kStatic, 4.4, "perf.persist-same-object",
      "Object persisted repeatedly within one transaction",
      "pmdk/btree_map");
  add("btree_map.c", 465, F::kPmdk, C::kMultipleFlushes, L::kExample,
      P::kNewlyFound, D::kStatic, 4.4, "perf.redundant-flush",
      "Redundant flush of tree node", "pmdk/btree_map");
  add("rbtree_map.c", 259, F::kPmdk, C::kPersistSameObjectInTx, L::kExample,
      P::kNewlyFound, D::kStatic, 4.4, "perf.persist-same-object",
      "Object persisted repeatedly within one transaction",
      "pmdk/rbtree_map");
  add("pminvaders.c", 249, F::kPmdk, C::kEmptyDurableTx, L::kExample,
      P::kNewlyFound, D::kStatic, 4.4, "perf.empty-durable-tx",
      "Durable transaction without persistent writes", "pmdk/pminvaders");
  add("pminvaders.c", 266, F::kPmdk, C::kEmptyDurableTx, L::kExample,
      P::kNewlyFound, D::kStatic, 4.4, "perf.empty-durable-tx",
      "Durable transaction without persistent writes", "pmdk/pminvaders");
  add("pminvaders.c", 351, F::kPmdk, C::kEmptyDurableTx, L::kExample,
      P::kNewlyFound, D::kStatic, 4.4, "perf.empty-durable-tx",
      "Durable transaction without persistent writes", "pmdk/pminvaders");
  add("hashmap_atomic.c", 120, F::kPmdk, C::kSemanticMismatch, L::kExample,
      P::kNewlyFound, D::kDynamic, 4.4, "rt.epoch-mismatch",
      "Multiple epochs write to different fields of an object",
      "pmdk/hashmap_atomic");
  add("hashmap_atomic.c", 264, F::kPmdk, C::kSemanticMismatch, L::kExample,
      P::kNewlyFound, D::kDynamic, 4.4, "rt.epoch-mismatch",
      "Multiple epochs write to different fields of an object",
      "pmdk/hashmap_atomic");
  add("hashmap_atomic.c", 285, F::kPmdk, C::kMultipleFlushes, L::kExample,
      P::kNewlyFound, D::kDynamic, 4.4, "rt.redundant-flush",
      "Redundant flush of bucket data (runtime-resolved address)",
      "pmdk/hashmap_atomic");
  add("hashmap_atomic.c", 496, F::kPmdk, C::kMissingBarrier, L::kExample,
      P::kNewlyFound, D::kDynamic, 4.4, "rt.missing-barrier",
      "Missing persist barrier before atomic update step",
      "pmdk/hashmap_atomic");
  add("obj_pmemlog_simple.c", 207, F::kPmdk, C::kSemanticMismatch, L::kLib,
      P::kNewlyFound, D::kDynamic, 4.4, "rt.epoch-mismatch",
      "Multiple epochs write to different fields of an object",
      "pmdk/obj_pmemlog_simple");
  add("obj_pmemlog_simple.c", 252, F::kPmdk, C::kMultipleFlushes, L::kLib,
      P::kNewlyFound, D::kDynamic, 4.4, "rt.redundant-flush",
      "Redundant flush of log header (runtime-resolved address)",
      "pmdk/obj_pmemlog_simple");
  // --- false positives ---
  add("btree_map.c", 290, F::kPmdk, C::kUnflushedWrite, L::kExample,
      P::kFalsePositive, D::kStatic, 0, "strict.unflushed-write",
      "Write flushed inside an external helper the analysis cannot see",
      "pmdk/btree_map");
  add("hash_map.c", 310, F::kPmdk, C::kSemanticMismatch, L::kExample,
      P::kFalsePositive, D::kStatic, 0, "model.semantic-mismatch",
      "Distinct objects merged by context-insensitive helper summary",
      "pmdk/hash_map");
  add("obj_pmemlog.c", 130, F::kPmdk, C::kMultipleFlushes, L::kLib,
      P::kFalsePositive, D::kStatic, 0, "perf.redundant-flush",
      "Dynamically-indexed buffers conservatively treated as overlapping",
      "pmdk/obj_pmemlog");

  // =========================================================================
  // PMFS (epoch persistency) — 11 warnings: 9 validated (5 studied + 4 new)
  // + 2 false positives.
  // =========================================================================
  add("journal.c", 632, F::kPmfs, C::kMultipleFlushes, L::kLib, P::kStudied,
      D::kStatic, 0, "perf.redundant-flush",
      "Flush redundant data when committing", "pmfs/journal");
  add("symlink.c", 38, F::kPmfs, C::kMissingBarrierNested, L::kLib,
      P::kStudied, D::kStatic, 0, "epoch.missing-barrier-nested",
      "Missing persistent barrier in nested transaction", "pmfs/symlink");
  add("xips.c", 207, F::kPmfs, C::kMultipleFlushes, L::kLib, P::kStudied,
      D::kStatic, 0, "perf.redundant-flush",
      "Flush the same buffer multiple times", "pmfs/xips");
  add("xips.c", 262, F::kPmfs, C::kMultipleFlushes, L::kLib, P::kStudied,
      D::kStatic, 0, "perf.redundant-flush",
      "Flush the same buffer multiple times", "pmfs/xips");
  add("files.c", 232, F::kPmfs, C::kFlushUnmodified, L::kLib, P::kStudied,
      D::kStatic, 0, "perf.flush-unmodified", "Flush unmodified object",
      "pmfs/files");
  // --- new (Table 8, 3.2 years) ---
  add("super.c", 542, F::kPmfs, C::kFlushUnmodified, L::kLib, P::kNewlyFound,
      D::kStatic, 3.2, "perf.flush-unmodified",
      "Flushing unmodified fields of an object", "pmfs/super");
  add("super.c", 543, F::kPmfs, C::kFlushUnmodified, L::kLib, P::kNewlyFound,
      D::kStatic, 3.2, "perf.flush-unmodified",
      "Flushing unmodified fields of an object", "pmfs/super");
  add("super.c", 579, F::kPmfs, C::kFlushUnmodified, L::kLib, P::kNewlyFound,
      D::kStatic, 3.2, "perf.flush-unmodified",
      "Flushing unmodified fields of an object", "pmfs/super");
  add("super.c", 584, F::kPmfs, C::kMultipleWritesAtOnce, L::kLib,
      P::kNewlyFound, D::kStatic, 3.2, "strict.multiple-writes",
      "Both superblock copies made durable by a single barrier",
      "pmfs/super");
  // --- false positives ---
  add("bbuild.c", 210, F::kPmfs, C::kMultipleWritesAtOnce, L::kLib,
      P::kFalsePositive, D::kStatic, 0, "strict.multiple-writes",
      "Version-guarded double update; single barrier is intentional",
      "pmfs/bbuild");
  add("inode.c", 150, F::kPmfs, C::kFlushUnmodified, L::kLib,
      P::kFalsePositive, D::kStatic, 0, "perf.flush-unmodified",
      "Object modified inside an external function the analysis cannot see",
      "pmfs/inode");

  // =========================================================================
  // NVM-Direct (strict persistency) — 9 warnings: 7 validated (3 studied +
  // 4 new) + 2 false positives.
  // =========================================================================
  add("nvm_region.c", 614, F::kNvmDirect, C::kMissingBarrier, L::kLib,
      P::kStudied, D::kStatic, 0, "strict.missing-barrier",
      "Missing persist barrier between epoch transactions",
      "nvmdirect/nvm_region");
  add("nvm_region.c", 933, F::kNvmDirect, C::kMissingBarrier, L::kLib,
      P::kStudied, D::kStatic, 0, "strict.missing-barrier",
      "Missing persist barrier between epoch transactions",
      "nvmdirect/nvm_region");
  add("nvm_heap.c", 1965, F::kNvmDirect, C::kMultipleFlushes, L::kLib,
      P::kStudied, D::kStatic, 0, "perf.redundant-flush",
      "Redundant flushes of persistent object", "nvmdirect/nvm_heap");
  // --- new (Table 8, v0.3, 5.3 years) ---
  add("nvm_locks.c", 905, F::kNvmDirect, C::kEmptyDurableTx, L::kLib,
      P::kNewlyFound, D::kStatic, 5.3, "perf.empty-durable-tx",
      "Durable transaction without persistent writes", "nvmdirect/nvm_locks");
  add("nvm_locks.c", 1411, F::kNvmDirect, C::kFlushUnmodified, L::kLib,
      P::kNewlyFound, D::kStatic, 5.3, "perf.flush-unmodified",
      "Flushing unmodified fields of an object", "nvmdirect/nvm_locks");
  add("nvm_locks.c", 932, F::kNvmDirect, C::kUnflushedWrite, L::kLib,
      P::kNewlyFound, D::kStatic, 5.3, "strict.unflushed-write",
      "Missing flush", "nvmdirect/nvm_locks");
  add("nvm_heap.c", 1675, F::kNvmDirect, C::kFlushUnmodified, L::kLib,
      P::kNewlyFound, D::kStatic, 5.3, "perf.flush-unmodified",
      "Flushing unmodified fields of an object", "nvmdirect/nvm_heap");
  // --- false positives ---
  add("nvm_region.c", 700, F::kNvmDirect, C::kFlushUnmodified, L::kLib,
      P::kFalsePositive, D::kStatic, 0, "perf.flush-unmodified",
      "Region initialized by an external function the analysis cannot see",
      "nvmdirect/nvm_region");
  add("nvm_tx.c", 450, F::kNvmDirect, C::kEmptyDurableTx, L::kLib,
      P::kFalsePositive, D::kStatic, 0, "perf.empty-durable-tx",
      "Undo records applied by an external function; tx is not empty",
      "nvmdirect/nvm_tx");

  // =========================================================================
  // Mnemosyne (epoch persistency) — 4 warnings, all validated new bugs
  // (Table 8, 10.0 years).
  // =========================================================================
  add("phlog_base.c", 132, F::kMnemosyne, C::kUnflushedWrite, L::kLib,
      P::kNewlyFound, D::kStatic, 10.0, "epoch.unflushed-write",
      "Unflushed write", "mnemosyne/phlog_base");
  add("chhash.c", 185, F::kMnemosyne, C::kPersistSameObjectInTx, L::kLib,
      P::kNewlyFound, D::kStatic, 10.0, "perf.persist-same-object",
      "Multiple writes to the same object in a transaction",
      "mnemosyne/chhash");
  add("chhash.c", 270, F::kMnemosyne, C::kPersistSameObjectInTx, L::kLib,
      P::kNewlyFound, D::kStatic, 10.0, "perf.persist-same-object",
      "Multiple writes to the same object in a transaction",
      "mnemosyne/chhash");
  add("CHash.c", 150, F::kMnemosyne, C::kMultipleFlushes, L::kLib,
      P::kNewlyFound, D::kStatic, 10.0, "perf.redundant-flush",
      "Multiple flushes to a persistent object", "mnemosyne/CHash");

  return r;
}

}  // namespace

const std::vector<BugSite>& registry() {
  static const std::vector<BugSite> r = make_registry();
  return r;
}

std::vector<const BugSite*> sites_of(Framework f) {
  std::vector<const BugSite*> out;
  for (const BugSite& s : registry())
    if (s.framework == f) out.push_back(&s);
  return out;
}

std::vector<const BugSite*> sites_of(Provenance p) {
  std::vector<const BugSite*> out;
  for (const BugSite& s : registry())
    if (s.provenance == p) out.push_back(&s);
  return out;
}

std::vector<const BugSite*> static_sites() {
  std::vector<const BugSite*> out;
  for (const BugSite& s : registry())
    if (s.detector == Detector::kStatic) out.push_back(&s);
  return out;
}

std::vector<const BugSite*> dynamic_sites() {
  std::vector<const BugSite*> out;
  for (const BugSite& s : registry())
    if (s.detector == Detector::kDynamic) out.push_back(&s);
  return out;
}

}  // namespace deepmc::corpus
