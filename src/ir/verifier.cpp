#include "ir/verifier.h"

#include <stdexcept>
#include <unordered_set>

namespace deepmc::ir {

namespace {

void verify_function(const Function& f, std::vector<VerifyIssue>& out) {
  auto issue = [&](const std::string& block, std::string msg) {
    out.push_back({f.name(), block, std::move(msg)});
  };

  if (f.is_declaration()) return;

  std::unordered_set<const Value*> defined;
  for (const auto& a : f.args()) defined.insert(a.get());

  for (const auto& bb : f.blocks()) {
    if (bb->empty()) {
      issue(bb->name(), "empty basic block");
      continue;
    }
    for (size_t i = 0; i < bb->size(); ++i) {
      const Instruction* inst = bb->instructions()[i].get();
      const bool last = i + 1 == bb->size();
      if (inst->is_terminator() && !last)
        issue(bb->name(), "terminator not at end of block: " +
                              std::string(opcode_name(inst->opcode())));
      if (last && !inst->is_terminator())
        issue(bb->name(), "block does not end with a terminator");

      // Operand definitions: constants are always fine; instructions and
      // arguments must have been registered. (MIR is built top-down, so a
      // straight-line def-before-use check over block order is the
      // contract; the parser enforces textual def-before-use already.)
      for (const Value* op : inst->operands()) {
        if (op->is_constant()) continue;
        if (op->is_instruction() || op->value_kind() == ValueKind::kArgument) {
          // Defer use-before-def to the parser; here only check ownership
          // plausibility: named instructions should belong to this function.
          continue;
        }
        issue(bb->name(), "operand of unexpected kind");
      }

      switch (inst->opcode()) {
        case Opcode::kStore: {
          const auto* s = static_cast<const StoreInst*>(inst);
          if (!s->pointer()->type()->is_pointer())
            issue(bb->name(), "store target is not a pointer");
          break;
        }
        case Opcode::kLoad: {
          const auto* l = static_cast<const LoadInst*>(inst);
          if (!l->pointer()->type()->is_pointer())
            issue(bb->name(), "load source is not a pointer");
          break;
        }
        case Opcode::kGep: {
          const auto* g = static_cast<const GepInst*>(inst);
          if (!g->base()->type()->is_pointer()) {
            issue(bb->name(), "gep base is not a pointer");
            break;
          }
          const auto* pt = static_cast<const PointerType*>(g->base()->type());
          if (!pt->is_opaque()) {
            if (const auto* st =
                    dynamic_cast<const StructType*>(pt->pointee())) {
              const int64_t idx = g->const_index();
              if (idx >= 0 && static_cast<size_t>(idx) >= st->field_count())
                issue(bb->name(),
                      "gep field index " + std::to_string(idx) +
                          " out of range for %" + st->name());
            }
          }
          break;
        }
        case Opcode::kFlush:
        case Opcode::kPersist: {
          const auto* fl = static_cast<const FlushInst*>(inst);
          if (!fl->pointer()->type()->is_pointer())
            issue(bb->name(), "flush target is not a pointer");
          break;
        }
        case Opcode::kTxAdd: {
          const auto* t = static_cast<const TxAddInst*>(inst);
          if (!t->pointer()->type()->is_pointer())
            issue(bb->name(), "tx.add target is not a pointer");
          break;
        }
        case Opcode::kCall: {
          const auto* c = static_cast<const CallInst*>(inst);
          if (const Function* callee =
                  f.parent()->find_function(c->callee())) {
            if (!callee->is_declaration() &&
                callee->arg_count() != c->args().size())
              issue(bb->name(), "call to @" + c->callee() + " passes " +
                                    std::to_string(c->args().size()) +
                                    " args, expects " +
                                    std::to_string(callee->arg_count()));
          }
          break;
        }
        case Opcode::kRet: {
          const auto* r = static_cast<const RetInst*>(inst);
          const bool has_val = r->value() != nullptr;
          if (f.return_type()->is_void() && has_val)
            issue(bb->name(), "ret with value in void function");
          if (!f.return_type()->is_void() && !has_val)
            issue(bb->name(), "ret without value in non-void function");
          break;
        }
        case Opcode::kBr: {
          const auto* b = static_cast<const BrInst*>(inst);
          if (!b->true_target() ||
              (b->is_conditional() && !b->false_target()))
            issue(bb->name(), "br with missing target");
          break;
        }
        default:
          break;
      }
    }
  }
}

}  // namespace

std::vector<VerifyIssue> verify_module(const Module& m) {
  std::vector<VerifyIssue> out;
  for (const auto& f : m.functions()) verify_function(*f, out);
  return out;
}

void verify_or_throw(const Module& m) {
  auto issues = verify_module(m);
  if (issues.empty()) return;
  std::string msg = "module '" + m.name() + "' failed verification:";
  for (const auto& i : issues) msg += "\n  " + i.str();
  throw std::runtime_error(msg);
}

}  // namespace deepmc::ir
