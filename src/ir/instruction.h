// MIR instructions.
//
// The set is exactly what DeepMC's analyses consume (paper §4): memory
// operations (alloca / pm.alloc / load / store / gep / memset / memcpy),
// persistence intrinsics (pm.flush / pm.fence / pm.persist / tx.add),
// region markers (tx / epoch / strand begin-end), control flow (br / ret),
// calls, integer arithmetic, and pointer casts.
//
// Every instruction carries an optional SourceLoc; corpus modules set it to
// the paper-cited file:line so checker reports line up with Tables 3 and 8.
#pragma once

#include <cassert>
#include <cstdint>
#include <string>
#include <vector>

#include "ir/value.h"
#include "support/source_loc.h"

namespace deepmc::ir {

class BasicBlock;
class Function;

enum class Opcode : uint8_t {
  kAlloca,    // %p = alloca T           (volatile stack slot)
  kPmAlloc,   // %p = pm.alloc T         (persistent allocation; malloc-like)
  kPmFree,    // pm.free %p
  kLoad,      // %v = load %p
  kStore,     // store %v, %p
  kGep,       // %q = gep %p, <field-or-index>
  kMemSet,    // memset %p, byte, size
  kMemCpy,    // memcpy %dst, %src, size
  kFlush,     // pm.flush %p, size       (clwb)
  kFence,     // pm.fence                (sfence / persist barrier)
  kPersist,   // pm.persist %p, size     (flush + fence)
  kTxAdd,     // tx.add %p, size         (undo-log an object; TX_ADD)
  kTxBegin,   // tx.begin / epoch.begin / strand.begin
  kTxEnd,     // tx.end / epoch.end / strand.end
  kCall,      // [%v =] call @f(args...)
  kRet,       // ret [%v]
  kBr,        // br label %b | br %c, label %t, label %f
  kBinOp,     // %v = add|sub|mul|div|eq|ne|lt|le %a, %b
  kCast,      // %q = cast %p to T*
};

const char* opcode_name(Opcode op);

/// Region kinds for TxBegin/TxEnd. `kTx` is a durable transaction
/// (PMDK TX_BEGIN, nvm_txbegin); `kEpoch`/`kStrand` are persistency-model
/// region annotations (§2.2).
enum class RegionKind : uint8_t { kTx, kEpoch, kStrand };
const char* region_kind_name(RegionKind k);

enum class BinOpKind : uint8_t {
  kAdd, kSub, kMul, kDiv,
  kEq, kNe, kLt, kLe,
};
const char* binop_name(BinOpKind k);

class Instruction : public Value {
 public:
  [[nodiscard]] Opcode opcode() const { return op_; }
  [[nodiscard]] const SourceLoc& loc() const { return loc_; }
  void set_loc(SourceLoc loc) { loc_ = std::move(loc); }

  [[nodiscard]] const std::vector<Value*>& operands() const { return ops_; }
  [[nodiscard]] Value* operand(size_t i) const { return ops_.at(i); }
  [[nodiscard]] size_t operand_count() const { return ops_.size(); }

  [[nodiscard]] BasicBlock* parent() const { return parent_; }
  void set_parent(BasicBlock* bb) { parent_ = bb; }

  [[nodiscard]] bool is_terminator() const {
    return op_ == Opcode::kRet || op_ == Opcode::kBr;
  }

  /// True for operations the checker treats as persist-relevant.
  [[nodiscard]] bool is_persist_op() const {
    switch (op_) {
      case Opcode::kFlush:
      case Opcode::kFence:
      case Opcode::kPersist:
      case Opcode::kTxAdd:
      case Opcode::kTxBegin:
      case Opcode::kTxEnd:
      case Opcode::kPmAlloc:
        return true;
      default:
        return false;
    }
  }

 protected:
  Instruction(Opcode op, const Type* type, std::vector<Value*> ops,
              std::string name = {})
      : Value(ValueKind::kInstruction, type, std::move(name)),
        op_(op),
        ops_(std::move(ops)) {}

 private:
  Opcode op_;
  std::vector<Value*> ops_;
  BasicBlock* parent_ = nullptr;
  SourceLoc loc_;
};

/// %p = alloca T  — result type is T*.
class AllocaInst final : public Instruction {
 public:
  AllocaInst(const PointerType* result, const Type* allocated,
             std::string name)
      : Instruction(Opcode::kAlloca, result, {}, std::move(name)),
        allocated_(allocated) {}
  [[nodiscard]] const Type* allocated_type() const { return allocated_; }

 private:
  const Type* allocated_;
};

/// %p = pm.alloc T — persistent allocation (result T*).
class PmAllocInst final : public Instruction {
 public:
  PmAllocInst(const PointerType* result, const Type* allocated,
              std::string name)
      : Instruction(Opcode::kPmAlloc, result, {}, std::move(name)),
        allocated_(allocated) {}
  [[nodiscard]] const Type* allocated_type() const { return allocated_; }

 private:
  const Type* allocated_;
};

class PmFreeInst final : public Instruction {
 public:
  explicit PmFreeInst(const Type* void_ty, Value* ptr)
      : Instruction(Opcode::kPmFree, void_ty, {ptr}) {}
  [[nodiscard]] Value* pointer() const { return operand(0); }
};

class LoadInst final : public Instruction {
 public:
  LoadInst(const Type* result, Value* ptr, std::string name)
      : Instruction(Opcode::kLoad, result, {ptr}, std::move(name)) {}
  [[nodiscard]] Value* pointer() const { return operand(0); }
};

class StoreInst final : public Instruction {
 public:
  StoreInst(const Type* void_ty, Value* value, Value* ptr)
      : Instruction(Opcode::kStore, void_ty, {value, ptr}) {}
  [[nodiscard]] Value* value() const { return operand(0); }
  [[nodiscard]] Value* pointer() const { return operand(1); }
};

/// %q = gep %p, idx — address of field idx (struct) or element idx (array).
/// A dynamic (non-constant) array index is allowed; field-sensitive analyses
/// then fall back to "somewhere in the array".
class GepInst final : public Instruction {
 public:
  GepInst(const Type* result, Value* base, Value* index, std::string name)
      : Instruction(Opcode::kGep, result, {base, index}, std::move(name)) {}
  [[nodiscard]] Value* base() const { return operand(0); }
  [[nodiscard]] Value* index() const { return operand(1); }
  /// Constant index, or -1 if dynamic.
  [[nodiscard]] int64_t const_index() const {
    if (auto* c = dynamic_cast<Constant*>(index())) return c->value();
    return -1;
  }
};

class MemSetInst final : public Instruction {
 public:
  MemSetInst(const Type* void_ty, Value* ptr, Value* byte, Value* size)
      : Instruction(Opcode::kMemSet, void_ty, {ptr, byte, size}) {}
  [[nodiscard]] Value* pointer() const { return operand(0); }
  [[nodiscard]] Value* byte() const { return operand(1); }
  [[nodiscard]] Value* size() const { return operand(2); }
};

class MemCpyInst final : public Instruction {
 public:
  MemCpyInst(const Type* void_ty, Value* dst, Value* src, Value* size)
      : Instruction(Opcode::kMemCpy, void_ty, {dst, src, size}) {}
  [[nodiscard]] Value* dest() const { return operand(0); }
  [[nodiscard]] Value* source() const { return operand(1); }
  [[nodiscard]] Value* size() const { return operand(2); }
};

/// pm.flush %p, size and pm.persist %p, size.
class FlushInst final : public Instruction {
 public:
  FlushInst(Opcode op, const Type* void_ty, Value* ptr, Value* size)
      : Instruction(op, void_ty, {ptr, size}) {
    assert(op == Opcode::kFlush || op == Opcode::kPersist);
  }
  [[nodiscard]] Value* pointer() const { return operand(0); }
  [[nodiscard]] Value* size() const { return operand(1); }
  [[nodiscard]] bool includes_fence() const {
    return opcode() == Opcode::kPersist;
  }
};

class FenceInst final : public Instruction {
 public:
  explicit FenceInst(const Type* void_ty)
      : Instruction(Opcode::kFence, void_ty, {}) {}
};

/// tx.add %p, size — register an object with the transaction undo log.
class TxAddInst final : public Instruction {
 public:
  TxAddInst(const Type* void_ty, Value* ptr, Value* size)
      : Instruction(Opcode::kTxAdd, void_ty, {ptr, size}) {}
  [[nodiscard]] Value* pointer() const { return operand(0); }
  [[nodiscard]] Value* size() const { return operand(1); }
};

class TxBeginInst final : public Instruction {
 public:
  TxBeginInst(const Type* void_ty, RegionKind kind)
      : Instruction(Opcode::kTxBegin, void_ty, {}), kind_(kind) {}
  [[nodiscard]] RegionKind region_kind() const { return kind_; }

 private:
  RegionKind kind_;
};

class TxEndInst final : public Instruction {
 public:
  TxEndInst(const Type* void_ty, RegionKind kind)
      : Instruction(Opcode::kTxEnd, void_ty, {}), kind_(kind) {}
  [[nodiscard]] RegionKind region_kind() const { return kind_; }

 private:
  RegionKind kind_;
};

class CallInst final : public Instruction {
 public:
  CallInst(const Type* result, std::string callee, std::vector<Value*> args,
           std::string name)
      : Instruction(Opcode::kCall, result, std::move(args), std::move(name)),
        callee_(std::move(callee)) {}
  [[nodiscard]] const std::string& callee() const { return callee_; }
  [[nodiscard]] const std::vector<Value*>& args() const { return operands(); }

 private:
  std::string callee_;
};

class RetInst final : public Instruction {
 public:
  RetInst(const Type* void_ty, Value* value /*nullable*/)
      : Instruction(Opcode::kRet, void_ty,
                    value ? std::vector<Value*>{value} : std::vector<Value*>{}) {
  }
  [[nodiscard]] Value* value() const {
    return operand_count() ? operand(0) : nullptr;
  }
};

class BrInst final : public Instruction {
 public:
  /// Unconditional.
  BrInst(const Type* void_ty, BasicBlock* target)
      : Instruction(Opcode::kBr, void_ty, {}), true_(target) {}
  /// Conditional.
  BrInst(const Type* void_ty, Value* cond, BasicBlock* t, BasicBlock* f)
      : Instruction(Opcode::kBr, void_ty, {cond}), true_(t), false_(f) {}

  [[nodiscard]] bool is_conditional() const { return operand_count() == 1; }
  [[nodiscard]] Value* condition() const {
    return is_conditional() ? operand(0) : nullptr;
  }
  [[nodiscard]] BasicBlock* true_target() const { return true_; }
  [[nodiscard]] BasicBlock* false_target() const { return false_; }
  void set_targets(BasicBlock* t, BasicBlock* f) {
    true_ = t;
    false_ = f;
  }

 private:
  BasicBlock* true_ = nullptr;
  BasicBlock* false_ = nullptr;
};

class BinOpInst final : public Instruction {
 public:
  BinOpInst(const Type* result, BinOpKind kind, Value* lhs, Value* rhs,
            std::string name)
      : Instruction(Opcode::kBinOp, result, {lhs, rhs}, std::move(name)),
        kind_(kind) {}
  [[nodiscard]] BinOpKind bin_kind() const { return kind_; }
  [[nodiscard]] Value* lhs() const { return operand(0); }
  [[nodiscard]] Value* rhs() const { return operand(1); }

 private:
  BinOpKind kind_;
};

/// %q = cast %p to T — pointer/int reinterpretation (e.g. the
/// `(nvm_amutex*)omutex` cast in Figure 9).
class CastInst final : public Instruction {
 public:
  CastInst(const Type* result, Value* src, std::string name)
      : Instruction(Opcode::kCast, result, {src}, std::move(name)) {}
  [[nodiscard]] Value* source() const { return operand(0); }
};

}  // namespace deepmc::ir
