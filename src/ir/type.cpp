#include "ir/type.h"

#include <stdexcept>

namespace deepmc::ir {

StructType::StructType(std::string name, std::vector<const Type*> fields)
    : Type(TypeKind::kStruct), name_(std::move(name)), fields_(std::move(fields)) {
  uint64_t off = 0;
  for (const Type* f : fields_) {
    const uint64_t a = std::max<uint64_t>(f->alignment(), 1);
    off = (off + a - 1) / a * a;
    offsets_.push_back(off);
    off += f->size();
    align_ = std::max(align_, a);
  }
  size_ = (off + align_ - 1) / align_ * align_;
  if (size_ == 0) size_ = align_;  // empty structs still occupy storage
}

size_t StructType::field_at_offset(uint64_t offset) const {
  for (size_t i = 0; i < fields_.size(); ++i) {
    if (offset >= offsets_[i] && offset < offsets_[i] + fields_[i]->size())
      return i;
  }
  return npos;
}

TypeContext::TypeContext() = default;

const IntType* TypeContext::int_type(uint32_t bits) {
  auto it = ints_.find(bits);
  if (it == ints_.end())
    it = ints_.emplace(bits, std::make_unique<IntType>(bits)).first;
  return it->second.get();
}

const PointerType* TypeContext::pointer_to(const Type* pointee) {
  auto it = pointers_.find(pointee);
  if (it == pointers_.end())
    it = pointers_.emplace(pointee, std::make_unique<PointerType>(pointee))
             .first;
  return it->second.get();
}

const StructType* TypeContext::create_struct(std::string name,
                                             std::vector<const Type*> fields) {
  if (struct_by_name_.count(name))
    throw std::invalid_argument("duplicate struct name: " + name);
  auto st = std::make_unique<StructType>(name, std::move(fields));
  const StructType* raw = st.get();
  structs_.push_back(std::move(st));
  struct_by_name_[raw->name()] = raw;
  return raw;
}

const StructType* TypeContext::find_struct(const std::string& name) const {
  auto it = struct_by_name_.find(name);
  return it == struct_by_name_.end() ? nullptr : it->second;
}

const ArrayType* TypeContext::array_of(const Type* elem, uint64_t count) {
  auto key = std::make_pair(elem, count);
  auto it = arrays_.find(key);
  if (it == arrays_.end())
    it = arrays_.emplace(key, std::make_unique<ArrayType>(elem, count)).first;
  return it->second.get();
}

}  // namespace deepmc::ir
