#include "ir/printer.h"

#include <ostream>
#include <sstream>

namespace deepmc::ir {

namespace {

std::string value_ref(const Value* v) {
  if (const auto* c = dynamic_cast<const Constant*>(v))
    return std::to_string(c->value());
  return "%" + v->name();
}

std::string typed_value_ref(const Value* v) {
  if (const auto* c = dynamic_cast<const Constant*>(v))
    return c->type()->str() + " " + std::to_string(c->value());
  return "%" + v->name();
}

void print_loc_suffix(const Instruction& inst, std::ostream& os) {
  if (inst.loc().valid())
    os << " !loc(\"" << inst.loc().file << "\", " << inst.loc().line << ")";
}

}  // namespace

void print_instruction(const Instruction& inst, std::ostream& os) {
  os << "  ";
  if (!inst.name().empty()) os << "%" << inst.name() << " = ";
  switch (inst.opcode()) {
    case Opcode::kAlloca: {
      const auto& a = static_cast<const AllocaInst&>(inst);
      os << "alloca " << a.allocated_type()->str();
      break;
    }
    case Opcode::kPmAlloc: {
      const auto& a = static_cast<const PmAllocInst&>(inst);
      os << "pm.alloc " << a.allocated_type()->str();
      break;
    }
    case Opcode::kPmFree:
      os << "pm.free " << value_ref(inst.operand(0));
      break;
    case Opcode::kLoad:
      os << "load " << value_ref(inst.operand(0));
      break;
    case Opcode::kStore: {
      const auto& s = static_cast<const StoreInst&>(inst);
      os << "store " << typed_value_ref(s.value()) << ", "
         << value_ref(s.pointer());
      break;
    }
    case Opcode::kGep: {
      const auto& g = static_cast<const GepInst&>(inst);
      os << "gep " << value_ref(g.base()) << ", " << value_ref(g.index());
      break;
    }
    case Opcode::kMemSet: {
      const auto& m = static_cast<const MemSetInst&>(inst);
      os << "memset " << value_ref(m.pointer()) << ", " << value_ref(m.byte())
         << ", " << value_ref(m.size());
      break;
    }
    case Opcode::kMemCpy: {
      const auto& m = static_cast<const MemCpyInst&>(inst);
      os << "memcpy " << value_ref(m.dest()) << ", " << value_ref(m.source())
         << ", " << value_ref(m.size());
      break;
    }
    case Opcode::kFlush:
    case Opcode::kPersist: {
      const auto& f = static_cast<const FlushInst&>(inst);
      os << (inst.opcode() == Opcode::kFlush ? "pm.flush " : "pm.persist ")
         << value_ref(f.pointer()) << ", " << value_ref(f.size());
      break;
    }
    case Opcode::kFence:
      os << "pm.fence";
      break;
    case Opcode::kTxAdd: {
      const auto& t = static_cast<const TxAddInst&>(inst);
      os << "tx.add " << value_ref(t.pointer()) << ", " << value_ref(t.size());
      break;
    }
    case Opcode::kTxBegin:
      os << region_kind_name(
                static_cast<const TxBeginInst&>(inst).region_kind())
         << ".begin";
      break;
    case Opcode::kTxEnd:
      os << region_kind_name(static_cast<const TxEndInst&>(inst).region_kind())
         << ".end";
      break;
    case Opcode::kCall: {
      const auto& c = static_cast<const CallInst&>(inst);
      os << "call ";
      if (!c.type()->is_void()) os << c.type()->str() << " ";
      os << "@" << c.callee() << "(";
      for (size_t i = 0; i < c.args().size(); ++i) {
        if (i) os << ", ";
        os << typed_value_ref(c.args()[i]);
      }
      os << ")";
      break;
    }
    case Opcode::kRet: {
      const auto& r = static_cast<const RetInst&>(inst);
      os << "ret";
      if (r.value()) os << " " << typed_value_ref(r.value());
      break;
    }
    case Opcode::kBr: {
      const auto& b = static_cast<const BrInst&>(inst);
      if (b.is_conditional()) {
        os << "br " << value_ref(b.condition()) << ", label %"
           << b.true_target()->name() << ", label %"
           << b.false_target()->name();
      } else {
        os << "br label %" << b.true_target()->name();
      }
      break;
    }
    case Opcode::kBinOp: {
      const auto& b = static_cast<const BinOpInst&>(inst);
      os << binop_name(b.bin_kind()) << " " << typed_value_ref(b.lhs()) << ", "
         << typed_value_ref(b.rhs());
      break;
    }
    case Opcode::kCast: {
      const auto& c = static_cast<const CastInst&>(inst);
      os << "cast " << value_ref(c.source()) << " to " << c.type()->str();
      break;
    }
  }
  print_loc_suffix(inst, os);
}

void print_function(const Function& f, std::ostream& os) {
  os << (f.is_declaration() ? "declare " : "define ")
     << f.return_type()->str() << " @" << f.name() << "(";
  for (size_t i = 0; i < f.arg_count(); ++i) {
    if (i) os << ", ";
    os << f.arg(i)->type()->str() << " %" << f.arg(i)->name();
  }
  os << ")";
  if (f.is_declaration()) {
    os << "\n";
    return;
  }
  os << " {\n";
  for (const auto& bb : f.blocks()) {
    os << bb->name() << ":\n";
    for (const auto& inst : bb->instructions()) {
      print_instruction(*inst, os);
      os << "\n";
    }
  }
  os << "}\n";
}

void print_module(const Module& m, std::ostream& os) {
  os << "module \"" << m.name() << "\"\n\n";
  for (const auto& [name, st] : m.types().structs()) {
    os << "struct %" << name << " { ";
    for (size_t i = 0; i < st->field_count(); ++i) {
      if (i) os << ", ";
      os << st->field(i)->str();
    }
    os << " }\n";
  }
  os << "\n";
  for (const auto& f : m.functions()) {
    print_function(*f, os);
    os << "\n";
  }
}

std::string to_string(const Module& m) {
  std::ostringstream os;
  print_module(m, os);
  return os.str();
}

std::string to_string(const Instruction& inst) {
  std::ostringstream os;
  print_instruction(inst, os);
  std::string s = os.str();
  // strip leading indent
  if (s.size() >= 2 && s[0] == ' ') s = s.substr(2);
  return s;
}

}  // namespace deepmc::ir
