// Textual MIR emission. The output parses back via ir/parser.h (round-trip
// is covered by tests/ir_roundtrip_test.cpp).
#pragma once

#include <iosfwd>
#include <string>

#include "ir/module.h"

namespace deepmc::ir {

void print_module(const Module& m, std::ostream& os);
void print_function(const Function& f, std::ostream& os);
void print_instruction(const Instruction& inst, std::ostream& os);

std::string to_string(const Module& m);
std::string to_string(const Instruction& inst);

}  // namespace deepmc::ir
