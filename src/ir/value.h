// MIR values: the SSA-ish operands of instructions.
//
// MIR follows clang -O0 shape: mutable locals live in alloca slots, so there
// are no phi nodes; every instruction result is assigned once.
#pragma once

#include <cstdint>
#include <string>

#include "ir/type.h"

namespace deepmc::ir {

enum class ValueKind : uint8_t {
  kConstant,
  kArgument,
  kInstruction,
};

class Value {
 public:
  virtual ~Value() = default;
  Value(const Value&) = delete;
  Value& operator=(const Value&) = delete;

  [[nodiscard]] ValueKind value_kind() const { return vkind_; }
  [[nodiscard]] const Type* type() const { return type_; }
  [[nodiscard]] const std::string& name() const { return name_; }
  void set_name(std::string n) { name_ = std::move(n); }

  [[nodiscard]] bool is_constant() const {
    return vkind_ == ValueKind::kConstant;
  }
  [[nodiscard]] bool is_instruction() const {
    return vkind_ == ValueKind::kInstruction;
  }

 protected:
  Value(ValueKind vkind, const Type* type, std::string name = {})
      : vkind_(vkind), type_(type), name_(std::move(name)) {}

 private:
  ValueKind vkind_;
  const Type* type_;
  std::string name_;
};

/// Integer constant (the only constant kind MIR needs).
class Constant final : public Value {
 public:
  Constant(const Type* type, int64_t value)
      : Value(ValueKind::kConstant, type), value_(value) {}
  [[nodiscard]] int64_t value() const { return value_; }

 private:
  int64_t value_;
};

/// Formal function parameter.
class Argument final : public Value {
 public:
  Argument(const Type* type, std::string name, unsigned index)
      : Value(ValueKind::kArgument, type, std::move(name)), index_(index) {}
  [[nodiscard]] unsigned index() const { return index_; }

 private:
  unsigned index_;
};

}  // namespace deepmc::ir
