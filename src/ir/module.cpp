#include "ir/module.h"

namespace deepmc::ir {

const char* opcode_name(Opcode op) {
  switch (op) {
    case Opcode::kAlloca: return "alloca";
    case Opcode::kPmAlloc: return "pm.alloc";
    case Opcode::kPmFree: return "pm.free";
    case Opcode::kLoad: return "load";
    case Opcode::kStore: return "store";
    case Opcode::kGep: return "gep";
    case Opcode::kMemSet: return "memset";
    case Opcode::kMemCpy: return "memcpy";
    case Opcode::kFlush: return "pm.flush";
    case Opcode::kFence: return "pm.fence";
    case Opcode::kPersist: return "pm.persist";
    case Opcode::kTxAdd: return "tx.add";
    case Opcode::kTxBegin: return "tx.begin";
    case Opcode::kTxEnd: return "tx.end";
    case Opcode::kCall: return "call";
    case Opcode::kRet: return "ret";
    case Opcode::kBr: return "br";
    case Opcode::kBinOp: return "binop";
    case Opcode::kCast: return "cast";
  }
  return "?";
}

const char* region_kind_name(RegionKind k) {
  switch (k) {
    case RegionKind::kTx: return "tx";
    case RegionKind::kEpoch: return "epoch";
    case RegionKind::kStrand: return "strand";
  }
  return "?";
}

const char* binop_name(BinOpKind k) {
  switch (k) {
    case BinOpKind::kAdd: return "add";
    case BinOpKind::kSub: return "sub";
    case BinOpKind::kMul: return "mul";
    case BinOpKind::kDiv: return "div";
    case BinOpKind::kEq: return "eq";
    case BinOpKind::kNe: return "ne";
    case BinOpKind::kLt: return "lt";
    case BinOpKind::kLe: return "le";
  }
  return "?";
}

std::vector<BasicBlock*> BasicBlock::successors() const {
  std::vector<BasicBlock*> out;
  if (auto* term = terminator()) {
    if (auto* br = dynamic_cast<BrInst*>(term)) {
      if (br->true_target()) out.push_back(br->true_target());
      if (br->is_conditional() && br->false_target())
        out.push_back(br->false_target());
    }
  }
  return out;
}

Function::Function(std::string name, const Type* return_type,
                   std::vector<std::pair<std::string, const Type*>> params,
                   Module* parent)
    : name_(std::move(name)), return_type_(return_type), parent_(parent) {
  unsigned idx = 0;
  for (auto& [pname, ptype] : params) {
    args_.push_back(std::make_unique<Argument>(ptype, pname, idx++));
  }
}

BasicBlock* Function::create_block(std::string name) {
  blocks_.push_back(std::make_unique<BasicBlock>(std::move(name), this));
  return blocks_.back().get();
}

BasicBlock* Function::find_block(const std::string& name) const {
  for (const auto& bb : blocks_)
    if (bb->name() == name) return bb.get();
  return nullptr;
}

Function* Module::create_function(
    std::string name, const Type* return_type,
    std::vector<std::pair<std::string, const Type*>> params) {
  if (find_function(name))
    throw std::invalid_argument("duplicate function: " + name);
  funcs_.push_back(std::make_unique<Function>(std::move(name), return_type,
                                              std::move(params), this));
  return funcs_.back().get();
}

Function* Module::find_function(const std::string& name) const {
  for (const auto& f : funcs_)
    if (f->name() == name) return f.get();
  return nullptr;
}

}  // namespace deepmc::ir
