// IRBuilder: convenience API for constructing MIR.
//
// Corpus modules (src/corpus) and tests build programs through this class.
// The builder keeps a "current source location" that is stamped onto every
// created instruction; corpus code sets it to the paper-cited file:line.
#pragma once

#include <cassert>
#include <memory>
#include <string>
#include <vector>

#include "ir/module.h"

namespace deepmc::ir {

class IRBuilder {
 public:
  explicit IRBuilder(Module& module) : module_(module) {}

  Module& module() { return module_; }
  TypeContext& types() { return module_.types(); }

  // --- function / block management ---------------------------------------
  Function* begin_function(
      std::string name, const Type* ret,
      std::vector<std::pair<std::string, const Type*>> params) {
    func_ = module_.create_function(std::move(name), ret, std::move(params));
    block_ = func_->create_block("entry");
    return func_;
  }

  BasicBlock* create_block(std::string name) {
    assert(func_);
    return func_->create_block(std::move(name));
  }

  void set_insert_point(BasicBlock* bb) {
    block_ = bb;
    func_ = bb->parent();
  }
  [[nodiscard]] BasicBlock* insert_block() const { return block_; }
  [[nodiscard]] Function* current_function() const { return func_; }

  // --- source locations ----------------------------------------------------
  void set_loc(std::string file, uint32_t line) {
    loc_ = SourceLoc(std::move(file), line);
  }
  void set_line(uint32_t line) { loc_.line = line; }
  [[nodiscard]] const SourceLoc& loc() const { return loc_; }

  // --- values ---------------------------------------------------------------
  Value* const_int(int64_t v, uint32_t bits = 64) {
    assert(func_);
    return func_->own(std::make_unique<Constant>(types().int_type(bits), v));
  }

  // --- memory ----------------------------------------------------------------
  AllocaInst* alloca_(const Type* ty, std::string name) {
    return append(std::make_unique<AllocaInst>(types().pointer_to(ty), ty,
                                               std::move(name)));
  }
  PmAllocInst* pm_alloc(const Type* ty, std::string name) {
    return append(std::make_unique<PmAllocInst>(types().pointer_to(ty), ty,
                                                std::move(name)));
  }
  PmFreeInst* pm_free(Value* ptr) {
    return append(std::make_unique<PmFreeInst>(types().void_type(), ptr));
  }
  LoadInst* load(Value* ptr, std::string name) {
    return append(std::make_unique<LoadInst>(pointee_or_i64(ptr), ptr,
                                             std::move(name)));
  }
  StoreInst* store(Value* val, Value* ptr) {
    return append(std::make_unique<StoreInst>(types().void_type(), val, ptr));
  }
  StoreInst* store(int64_t val, Value* ptr) {
    return store(const_int(val, value_bits(ptr)), ptr);
  }
  GepInst* gep(Value* base, int64_t index, std::string name) {
    return gep_at(base, const_int(index), std::move(name));
  }
  /// gep with a dynamic (Value) index, e.g. array element addressing.
  GepInst* gep_at(Value* base, Value* index, std::string name) {
    return append(std::make_unique<GepInst>(gep_result_type(base, index),
                                            base, index, std::move(name)));
  }
  MemSetInst* memset_(Value* ptr, Value* byte, Value* size) {
    return append(
        std::make_unique<MemSetInst>(types().void_type(), ptr, byte, size));
  }
  MemCpyInst* memcpy_(Value* dst, Value* src, Value* size) {
    return append(
        std::make_unique<MemCpyInst>(types().void_type(), dst, src, size));
  }

  // --- persistence -----------------------------------------------------------
  FlushInst* flush(Value* ptr, uint64_t size = 0) {
    return append(std::make_unique<FlushInst>(
        Opcode::kFlush, types().void_type(), ptr, size_operand(ptr, size)));
  }
  FenceInst* fence() {
    return append(std::make_unique<FenceInst>(types().void_type()));
  }
  FlushInst* persist(Value* ptr, uint64_t size = 0) {
    return append(std::make_unique<FlushInst>(
        Opcode::kPersist, types().void_type(), ptr, size_operand(ptr, size)));
  }
  TxAddInst* tx_add(Value* ptr, uint64_t size = 0) {
    return append(std::make_unique<TxAddInst>(types().void_type(), ptr,
                                              size_operand(ptr, size)));
  }
  TxBeginInst* tx_begin(RegionKind kind = RegionKind::kTx) {
    return append(std::make_unique<TxBeginInst>(types().void_type(), kind));
  }
  TxEndInst* tx_end(RegionKind kind = RegionKind::kTx) {
    return append(std::make_unique<TxEndInst>(types().void_type(), kind));
  }
  TxBeginInst* epoch_begin() { return tx_begin(RegionKind::kEpoch); }
  TxEndInst* epoch_end() { return tx_end(RegionKind::kEpoch); }
  TxBeginInst* strand_begin() { return tx_begin(RegionKind::kStrand); }
  TxEndInst* strand_end() { return tx_end(RegionKind::kStrand); }

  // --- calls / control flow ---------------------------------------------------
  CallInst* call(Function* callee, std::vector<Value*> args,
                 std::string name = {}) {
    return append(std::make_unique<CallInst>(callee->return_type(),
                                             callee->name(), std::move(args),
                                             std::move(name)));
  }
  /// Call by name with an explicit result type (external / forward).
  CallInst* call_ext(std::string callee, const Type* result,
                     std::vector<Value*> args, std::string name = {}) {
    return append(std::make_unique<CallInst>(result, std::move(callee),
                                             std::move(args), std::move(name)));
  }
  RetInst* ret(Value* v = nullptr) {
    return append(std::make_unique<RetInst>(types().void_type(), v));
  }
  BrInst* br(BasicBlock* target) {
    return append(std::make_unique<BrInst>(types().void_type(), target));
  }
  BrInst* cond_br(Value* cond, BasicBlock* t, BasicBlock* f) {
    return append(std::make_unique<BrInst>(types().void_type(), cond, t, f));
  }
  BinOpInst* binop(BinOpKind kind, Value* lhs, Value* rhs, std::string name) {
    const Type* result = is_compare(kind)
                             ? static_cast<const Type*>(types().i1())
                             : lhs->type();
    return append(std::make_unique<BinOpInst>(result, kind, lhs, rhs,
                                              std::move(name)));
  }
  CastInst* cast(Value* src, const Type* to_pointee, std::string name) {
    return append(std::make_unique<CastInst>(types().pointer_to(to_pointee),
                                             src, std::move(name)));
  }

  static bool is_compare(BinOpKind k) {
    return k == BinOpKind::kEq || k == BinOpKind::kNe || k == BinOpKind::kLt ||
           k == BinOpKind::kLe;
  }

 private:
  template <typename T>
  T* append(std::unique_ptr<T> inst) {
    assert(block_ && "no insert point");
    inst->set_loc(loc_);
    return static_cast<T*>(block_->append(std::move(inst)));
  }

  const Type* pointee_or_i64(Value* ptr) {
    if (auto* pt = dynamic_cast<const PointerType*>(ptr->type());
        pt && !pt->is_opaque())
      return pt->pointee();
    return types().i64();
  }

  uint32_t value_bits(Value* ptr) {
    const Type* t = pointee_or_i64(ptr);
    if (auto* it = dynamic_cast<const IntType*>(t)) return it->bits();
    return 64;
  }

  const Type* gep_result_type(Value* base, Value* index) {
    auto* pt = dynamic_cast<const PointerType*>(base->type());
    if (!pt || pt->is_opaque()) return types().opaque_ptr();
    const Type* pointee = pt->pointee();
    if (auto* st = dynamic_cast<const StructType*>(pointee)) {
      if (auto* c = dynamic_cast<Constant*>(index);
          c && c->value() >= 0 &&
          static_cast<size_t>(c->value()) < st->field_count())
        return types().pointer_to(st->field(static_cast<size_t>(c->value())));
      return types().opaque_ptr();
    }
    if (auto* at = dynamic_cast<const ArrayType*>(pointee))
      return types().pointer_to(at->element());
    // gep on a pointer-to-scalar: element addressing in a buffer.
    return base->type();
  }

  Value* size_operand(Value* ptr, uint64_t size) {
    if (size == 0) {
      size = pointee_or_i64(ptr)->size();
      if (size == 0) size = 8;
    }
    return const_int(static_cast<int64_t>(size));
  }

  Module& module_;
  Function* func_ = nullptr;
  BasicBlock* block_ = nullptr;
  SourceLoc loc_;
};

}  // namespace deepmc::ir
