// MIR structural verifier.
//
// Run after building or parsing a module, before any analysis. Catches the
// malformed-IR classes the analyses assume away: blocks without terminators,
// terminators mid-block, stores through non-pointers, calls to unknown
// functions with bodies expected, gep on non-aggregates with constant
// indices out of range, and type mismatches on ret.
#pragma once

#include <string>
#include <vector>

#include "ir/module.h"

namespace deepmc::ir {

struct VerifyIssue {
  std::string function;
  std::string block;
  std::string message;

  [[nodiscard]] std::string str() const {
    return "@" + function + (block.empty() ? "" : "/" + block) + ": " + message;
  }
};

/// Returns all issues (empty == valid module).
std::vector<VerifyIssue> verify_module(const Module& m);

/// Convenience: throws std::runtime_error listing issues if invalid.
void verify_or_throw(const Module& m);

}  // namespace deepmc::ir
