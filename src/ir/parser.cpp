#include "ir/parser.h"

#include <cctype>
#include <map>
#include <optional>
#include <vector>

#include "ir/builder.h"
#include "support/str.h"

namespace deepmc::ir {

namespace {

// ---------------------------------------------------------------------------
// Tokenizer: per-line, since the grammar is line-oriented.
// ---------------------------------------------------------------------------

enum class Tok : uint8_t {
  kIdent,   // bare word: define, store, i64, label, add, ...
  kLocal,   // %name
  kGlobal,  // @name
  kNumber,  // [-]digits
  kString,  // "..."
  kPunct,   // single char: ( ) { } , * [ ] : = !
  kEnd,
};

struct Token {
  Tok kind = Tok::kEnd;
  std::string text;
  int64_t number = 0;
  size_t col = 0;  ///< 1-based column where the token starts
};

class Lexer {
 public:
  Lexer(std::string_view line, size_t lineno) : s_(line), lineno_(lineno) {
    advance();
  }

  [[nodiscard]] const Token& peek() const { return cur_; }
  Token take() {
    Token t = cur_;
    advance();
    return t;
  }
  [[nodiscard]] bool at_end() const { return cur_.kind == Tok::kEnd; }

  Token expect(Tok kind, const char* what) {
    if (cur_.kind != kind) fail(std::string("expected ") + what);
    return take();
  }
  [[nodiscard]] size_t col() const { return tok_col_; }
  void expect_punct(char c) {
    if (cur_.kind != Tok::kPunct || cur_.text[0] != c)
      fail(std::string("expected '") + c + "'");
    take();
  }
  bool accept_punct(char c) {
    if (cur_.kind == Tok::kPunct && cur_.text[0] == c) {
      take();
      return true;
    }
    return false;
  }
  bool accept_ident(std::string_view word) {
    if (cur_.kind == Tok::kIdent && cur_.text == word) {
      take();
      return true;
    }
    return false;
  }

  [[noreturn]] void fail(const std::string& msg) const {
    throw ParseError(lineno_, tok_col_, msg + " (near '" + cur_.text + "')");
  }
  /// Like fail(), but anchored at an already-consumed token.
  [[noreturn]] void fail_at(const Token& t, const std::string& msg) const {
    throw ParseError(lineno_, t.col, msg + " (near '" + t.text + "')");
  }

  [[nodiscard]] size_t lineno() const { return lineno_; }

 private:
  static bool ident_char(char c) {
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
           c == '.' || c == '-';
  }

  void advance() {
    while (pos_ < s_.size() &&
           (s_[pos_] == ' ' || s_[pos_] == '\t' || s_[pos_] == '\r'))
      ++pos_;
    tok_col_ = pos_ + 1;
    if (pos_ >= s_.size() || s_[pos_] == ';') {
      cur_ = {Tok::kEnd, "", 0, tok_col_};
      return;
    }
    const char c = s_[pos_];
    if (c == '%' || c == '@') {
      ++pos_;
      size_t start = pos_;
      while (pos_ < s_.size() && ident_char(s_[pos_])) ++pos_;
      cur_ = {c == '%' ? Tok::kLocal : Tok::kGlobal,
              std::string(s_.substr(start, pos_ - start)), 0, tok_col_};
      return;
    }
    if (c == '"') {
      ++pos_;
      size_t start = pos_;
      while (pos_ < s_.size() && s_[pos_] != '"') ++pos_;
      if (pos_ >= s_.size())
        throw ParseError(lineno_, tok_col_, "unterminated string");
      cur_ = {Tok::kString, std::string(s_.substr(start, pos_ - start)), 0,
              tok_col_};
      ++pos_;
      return;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '-' && pos_ + 1 < s_.size() &&
         std::isdigit(static_cast<unsigned char>(s_[pos_ + 1])))) {
      size_t start = pos_;
      const bool neg = c == '-';
      if (neg) ++pos_;
      // Overflow-checked accumulation: std::stoll would throw out_of_range
      // (not ParseError) on a huge literal, which breaks the never-crash
      // contract of the tolerant parser.
      uint64_t mag = 0;
      const uint64_t cap = neg ? uint64_t{1} << 63 : (uint64_t{1} << 63) - 1;
      while (pos_ < s_.size() &&
             std::isdigit(static_cast<unsigned char>(s_[pos_]))) {
        const auto d = static_cast<uint64_t>(s_[pos_] - '0');
        if (mag > (cap - d) / 10)
          throw ParseError(lineno_, tok_col_, "integer literal out of range");
        mag = mag * 10 + d;
        ++pos_;
      }
      std::string text(s_.substr(start, pos_ - start));
      const auto v = neg ? -static_cast<int64_t>(mag - 1) - 1
                         : static_cast<int64_t>(mag);
      cur_ = {Tok::kNumber, text, v, tok_col_};
      return;
    }
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      size_t start = pos_;
      while (pos_ < s_.size() && ident_char(s_[pos_])) ++pos_;
      cur_ = {Tok::kIdent, std::string(s_.substr(start, pos_ - start)), 0,
              tok_col_};
      return;
    }
    cur_ = {Tok::kPunct, std::string(1, c), 0, tok_col_};
    ++pos_;
  }

  std::string_view s_;
  size_t pos_ = 0;
  size_t tok_col_ = 1;  // 1-based column where cur_ starts
  size_t lineno_;
  Token cur_;
};

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

class Parser {
 public:
  /// Strict mode when `diags` is null (first ParseError propagates);
  /// tolerant mode otherwise (errors are recorded, the line is skipped,
  /// parsing continues until `max_diags` problems have been seen).
  explicit Parser(std::string_view text,
                  std::vector<ParseDiagnostic>* diags = nullptr,
                  size_t max_diags = 0)
      : diags_(diags), max_diags_(max_diags) {
    for (std::string_view line : split(text, '\n', /*keep_empty=*/true))
      lines_.emplace_back(line);
  }

  std::unique_ptr<Module> run() {
    // Pass 1: module name, structs, and all function signatures.
    scan_header_and_signatures();
    // Pass 2: function bodies.
    parse_bodies();
    return std::move(module_);
  }

 private:
  // --- error recovery --------------------------------------------------------

  /// Runs `fn`; in tolerant mode a ParseError becomes a diagnostic and the
  /// caller moves on, in strict mode it propagates. Returns false once the
  /// diagnostic cap is hit — callers stop feeding the parser more lines.
  template <class Fn>
  bool guarded(Fn&& fn) {
    if (diags_ == nullptr) {
      fn();
      return true;
    }
    if (gave_up_) return false;
    try {
      fn();
    } catch (const ParseError& e) {
      diags_->push_back({e.line(), e.col(), e.message()});
      // At the cap the parse stops; a result with exactly max_diags_
      // diagnostics is therefore possibly truncated.
      if (diags_->size() >= max_diags_) gave_up_ = true;
    }
    return !gave_up_;
  }

  // --- types ---------------------------------------------------------------

  static constexpr int kMaxTypeDepth = 32;
  static constexpr uint32_t kMaxIntBits = 1u << 16;
  static constexpr int64_t kMaxArrayLen = int64_t{1} << 32;

  const Type* parse_type(Lexer& lex, int depth = 0) {
    if (depth > kMaxTypeDepth) lex.fail("type nesting too deep");
    const Type* base = nullptr;
    if (lex.peek().kind == Tok::kIdent) {
      const std::string& w = lex.peek().text;
      if (w == "void") {
        lex.take();
        base = module_->types().void_type();
      } else if (w == "ptr") {
        lex.take();
        base = module_->types().opaque_ptr();
      } else if (w.size() > 1 && w[0] == 'i') {
        uint64_t bits = 0;
        for (size_t i = 1; i < w.size(); ++i) {
          if (!std::isdigit(static_cast<unsigned char>(w[i])) ||
              bits > kMaxIntBits)
            lex.fail("bad type " + w);
          bits = bits * 10 + static_cast<uint64_t>(w[i] - '0');
        }
        if (bits == 0 || bits > kMaxIntBits) lex.fail("bad type " + w);
        lex.take();
        base = module_->types().int_type(static_cast<uint32_t>(bits));
      } else {
        lex.fail("unknown type " + w);
      }
    } else if (lex.peek().kind == Tok::kLocal) {
      const std::string name = lex.take().text;
      const StructType* st = module_->types().find_struct(name);
      if (st) {
        base = st;
      } else {
        // Forward / self reference: degrade to untyped pointer if a '*'
        // follows, else error.
        if (lex.peek().kind == Tok::kPunct && lex.peek().text == "*") {
          lex.take();
          return module_->types().opaque_ptr();
        }
        lex.fail("unknown struct %" + name);
      }
    } else if (lex.peek().kind == Tok::kPunct && lex.peek().text == "[") {
      lex.take();
      Token n = lex.expect(Tok::kNumber, "array length");
      if (n.number < 0 || n.number > kMaxArrayLen)
        lex.fail("array length out of range");
      if (!lex.accept_ident("x")) lex.fail("expected 'x' in array type");
      const Type* elem = parse_type(lex, depth + 1);
      lex.expect_punct(']');
      base = module_->types().array_of(elem, static_cast<uint64_t>(n.number));
    } else {
      lex.fail("expected type");
    }
    int stars = 0;
    while (lex.peek().kind == Tok::kPunct && lex.peek().text == "*") {
      if (++stars > kMaxTypeDepth) lex.fail("pointer nesting too deep");
      lex.take();
      base = module_->types().pointer_to(base);
    }
    return base;
  }

  // --- pass 1 ----------------------------------------------------------------

  void scan_header_and_signatures() {
    std::string mod_name = "module";
    // Find module line + struct lines first (in order), then signatures.
    for (size_t i = 0; i < lines_.size(); ++i) {
      std::string_view t = trim(lines_[i]);
      if (t.empty() || t[0] == ';') continue;
      const bool keep = guarded([&] {
        Lexer lex(lines_[i], i + 1);
        if (lex.accept_ident("module")) {
          mod_name = lex.expect(Tok::kString, "module name").text;
          if (!module_) module_ = std::make_unique<Module>(mod_name);
          return;
        }
        if (!module_) module_ = std::make_unique<Module>(mod_name);
        if (lex.accept_ident("struct")) {
          parse_struct(lex);
        } else if (lex.peek().kind == Tok::kIdent &&
                   (lex.peek().text == "define" ||
                    lex.peek().text == "declare")) {
          parse_signature(lex, i);
        }
      });
      if (!keep) break;
    }
    if (!module_) module_ = std::make_unique<Module>(mod_name);
  }

  void parse_struct(Lexer& lex) {
    Token name = lex.expect(Tok::kLocal, "struct name");
    if (module_->types().find_struct(name.text))
      lex.fail_at(name, "duplicate struct %" + name.text);
    lex.expect_punct('{');
    std::vector<const Type*> fields;
    if (!lex.accept_punct('}')) {
      do {
        fields.push_back(parse_type(lex));
      } while (lex.accept_punct(','));
      lex.expect_punct('}');
    }
    module_->types().create_struct(name.text, std::move(fields));
  }

  void parse_signature(Lexer& lex, size_t line_index) {
    const bool is_define = lex.peek().text == "define";
    lex.take();
    const Type* ret = parse_type(lex);
    Token name = lex.expect(Tok::kGlobal, "function name");
    if (module_->find_function(name.text))
      lex.fail_at(name, "duplicate function @" + name.text);
    lex.expect_punct('(');
    std::vector<std::pair<std::string, const Type*>> params;
    if (!lex.accept_punct(')')) {
      unsigned anon = 0;
      do {
        const Type* pt = parse_type(lex);
        std::string pname;
        if (lex.peek().kind == Tok::kLocal) pname = lex.take().text;
        else pname = "arg" + std::to_string(anon++);
        params.emplace_back(std::move(pname), pt);
      } while (lex.accept_punct(','));
      lex.expect_punct(')');
    }
    Function* f = module_->create_function(name.text, ret, std::move(params));
    if (is_define) body_start_.emplace_back(f, line_index);
  }

  // --- pass 2 ----------------------------------------------------------------

  void parse_bodies() {
    // Bodies parse in source order, so strict mode reports the first error
    // by line number and tolerant diagnostics come out in a stable order.
    for (auto& [func, start] : body_start_) {
      Function* f = func;
      const size_t s = start;
      if (!guarded([&] { parse_body(f, s); })) break;
    }
  }

  /// A line with its trailing ';' comment removed and trimmed.
  static std::string_view code_of(std::string_view line) {
    if (auto semi = line.find(';'); semi != std::string_view::npos)
      line = line.substr(0, semi);
    return trim(line);
  }

  void parse_body(Function* func, size_t def_line) {
    // Body spans from the line after `define ... {` to the matching `}`.
    size_t first = def_line;
    {
      std::string_view t = code_of(lines_[def_line]);
      if (t.empty() || t.back() != '{')
        throw ParseError(def_line + 1, "expected '{' ending define line");
      first = def_line + 1;
    }
    size_t last = first;
    while (last < lines_.size() && code_of(lines_[last]) != "}") ++last;
    if (last >= lines_.size())
      throw ParseError(def_line + 1, "missing closing '}' for @" + func->name());

    // Collect labels in order, creating blocks.
    std::map<std::string, BasicBlock*> blocks;
    for (size_t i = first; i < last; ++i) {
      std::string_view t = code_of(lines_[i]);
      if (t.empty()) continue;
      if (t.back() == ':' && t.find(' ') == std::string_view::npos) {
        std::string label(t.substr(0, t.size() - 1));
        if (blocks.count(label)) {
          // Recoverable: keep the first definition, report the repeat.
          if (!guarded([&] {
                throw ParseError(i + 1, "duplicate label " + label);
              }))
            return;
          continue;
        }
        blocks[label] = func->create_block(label);
      }
    }
    if (func->blocks().empty()) {
      // Implicit single entry block when no labels were written.
      blocks["entry"] = func->create_block("entry");
    }

    IRBuilder b(*func->parent());
    std::map<std::string, Value*> values;
    for (const auto& arg : func->args()) values[arg->name()] = arg.get();

    BasicBlock* cur = func->entry();
    b.set_insert_point(cur);

    // Pending conditional branches that referenced labels before creation
    // are impossible: all blocks exist. Parse instructions; in tolerant
    // mode a bad line is recorded and skipped, and parsing resumes on the
    // next line of the same body.
    for (size_t i = first; i < last; ++i) {
      std::string_view t = code_of(lines_[i]);
      if (t.empty()) continue;
      if (t.back() == ':' && t.find(' ') == std::string_view::npos) {
        auto it = blocks.find(std::string(t.substr(0, t.size() - 1)));
        if (it == blocks.end()) continue;  // duplicate label already noted
        cur = it->second;
        b.set_insert_point(cur);
        continue;
      }
      const bool keep = guarded([&] {
        Lexer lex(lines_[i], i + 1);
        parse_instruction(lex, b, func, values, blocks);
      });
      if (!keep) return;
    }
  }

  Value* parse_operand(Lexer& lex, IRBuilder& b,
                       std::map<std::string, Value*>& values,
                       const Type* type_hint = nullptr) {
    // Optional type prefix for constants: `i64 5`.
    if (lex.peek().kind == Tok::kIdent && lex.peek().text.size() > 1 &&
        lex.peek().text[0] == 'i' &&
        std::isdigit(static_cast<unsigned char>(lex.peek().text[1]))) {
      const Type* t = parse_type(lex);
      Token n = lex.expect(Tok::kNumber, "constant");
      const auto* it = dynamic_cast<const IntType*>(t);
      return b.const_int(n.number, it ? it->bits() : 64);
    }
    if (lex.peek().kind == Tok::kNumber) {
      Token n = lex.take();
      uint32_t bits = 64;
      if (const auto* it = dynamic_cast<const IntType*>(type_hint))
        bits = it->bits();
      return b.const_int(n.number, bits);
    }
    Token v = lex.expect(Tok::kLocal, "value");
    auto it = values.find(v.text);
    if (it == values.end()) lex.fail_at(v, "undefined value %" + v.text);
    return it->second;
  }

  static std::optional<BinOpKind> binop_from(const std::string& w) {
    if (w == "add") return BinOpKind::kAdd;
    if (w == "sub") return BinOpKind::kSub;
    if (w == "mul") return BinOpKind::kMul;
    if (w == "div") return BinOpKind::kDiv;
    if (w == "eq") return BinOpKind::kEq;
    if (w == "ne") return BinOpKind::kNe;
    if (w == "lt") return BinOpKind::kLt;
    if (w == "le") return BinOpKind::kLe;
    return std::nullopt;
  }

  void parse_instruction(Lexer& lex, IRBuilder& b, Function* func,
                         std::map<std::string, Value*>& values,
                         std::map<std::string, BasicBlock*>& blocks) {
    b.set_loc("", 0);  // cleared; !loc suffix re-sets below via set_loc later
    std::string result;
    if (lex.peek().kind == Tok::kLocal) {
      result = lex.take().text;
      lex.expect_punct('=');
    }

    // Pre-scan the !loc suffix is awkward mid-line; instead parse the
    // instruction, then the suffix, then patch the location.
    Instruction* inst = nullptr;

    Token op = lex.expect(Tok::kIdent, "opcode");
    const std::string& w = op.text;

    if (w == "alloca" || w == "pm.alloc") {
      const Type* t = parse_type(lex);
      inst = (w == "alloca") ? static_cast<Instruction*>(b.alloca_(t, result))
                             : static_cast<Instruction*>(b.pm_alloc(t, result));
    } else if (w == "pm.free") {
      inst = b.pm_free(parse_operand(lex, b, values));
    } else if (w == "load") {
      inst = b.load(parse_operand(lex, b, values), result);
    } else if (w == "store") {
      Value* val = parse_operand(lex, b, values);
      lex.expect_punct(',');
      Value* ptr = parse_operand(lex, b, values);
      inst = b.store(val, ptr);
    } else if (w == "gep") {
      Value* base = parse_operand(lex, b, values);
      lex.expect_punct(',');
      Value* idx = parse_operand(lex, b, values);
      inst = b.gep_at(base, idx, result);
    } else if (w == "memset") {
      Value* p = parse_operand(lex, b, values);
      lex.expect_punct(',');
      Value* byte = parse_operand(lex, b, values);
      lex.expect_punct(',');
      Value* size = parse_operand(lex, b, values);
      inst = b.memset_(p, byte, size);
    } else if (w == "memcpy") {
      Value* d = parse_operand(lex, b, values);
      lex.expect_punct(',');
      Value* s = parse_operand(lex, b, values);
      lex.expect_punct(',');
      Value* size = parse_operand(lex, b, values);
      inst = b.memcpy_(d, s, size);
    } else if (w == "pm.flush" || w == "pm.persist" || w == "tx.add") {
      Value* p = parse_operand(lex, b, values);
      uint64_t size = 0;
      if (lex.accept_punct(',')) {
        Token n = lex.expect(Tok::kNumber, "size");
        size = static_cast<uint64_t>(n.number);
      }
      if (w == "pm.flush") inst = b.flush(p, size);
      else if (w == "pm.persist") inst = b.persist(p, size);
      else inst = b.tx_add(p, size);
    } else if (w == "pm.fence") {
      inst = b.fence();
    } else if (w == "tx.begin" || w == "epoch.begin" || w == "strand.begin") {
      RegionKind k = w[0] == 't' ? RegionKind::kTx
                     : w[0] == 'e' ? RegionKind::kEpoch
                                   : RegionKind::kStrand;
      inst = b.tx_begin(k);
    } else if (w == "tx.end" || w == "epoch.end" || w == "strand.end") {
      RegionKind k = w[0] == 't' ? RegionKind::kTx
                     : w[0] == 'e' ? RegionKind::kEpoch
                                   : RegionKind::kStrand;
      inst = b.tx_end(k);
    } else if (w == "call") {
      const Type* ret = module_->types().void_type();
      if (lex.peek().kind != Tok::kGlobal) ret = parse_type(lex);
      Token callee = lex.expect(Tok::kGlobal, "callee");
      lex.expect_punct('(');
      std::vector<Value*> args;
      if (!lex.accept_punct(')')) {
        do {
          args.push_back(parse_operand(lex, b, values));
        } while (lex.accept_punct(','));
        lex.expect_punct(')');
      }
      // Prefer the declared return type when the callee is known.
      if (Function* cf = module_->find_function(callee.text))
        ret = cf->return_type();
      inst = b.call_ext(callee.text, ret, std::move(args), result);
    } else if (w == "ret") {
      Value* v = nullptr;
      if (!lex.at_end() && !(lex.peek().kind == Tok::kPunct &&
                             lex.peek().text == "!"))
        v = parse_operand(lex, b, values, func->return_type());
      inst = b.ret(v);
    } else if (w == "br") {
      if (lex.accept_ident("label")) {
        Token t = lex.expect(Tok::kLocal, "target");
        inst = b.br(lookup_block(lex, blocks, t.text));
      } else {
        Value* cond = parse_operand(lex, b, values);
        lex.expect_punct(',');
        if (!lex.accept_ident("label")) lex.fail("expected 'label'");
        Token t1 = lex.expect(Tok::kLocal, "true target");
        lex.expect_punct(',');
        if (!lex.accept_ident("label")) lex.fail("expected 'label'");
        Token t2 = lex.expect(Tok::kLocal, "false target");
        inst = b.cond_br(cond, lookup_block(lex, blocks, t1.text),
                         lookup_block(lex, blocks, t2.text));
      }
    } else if (auto bk = binop_from(w)) {
      Value* lhs = parse_operand(lex, b, values);
      lex.expect_punct(',');
      Value* rhs = parse_operand(lex, b, values, lhs->type());
      inst = b.binop(*bk, lhs, rhs, result);
    } else if (w == "cast") {
      Value* src = parse_operand(lex, b, values);
      if (!lex.accept_ident("to")) lex.fail("expected 'to'");
      const Type* t = parse_type(lex);
      // `cast %p to T*` — builder's cast() takes the pointee.
      const auto* pt = dynamic_cast<const PointerType*>(t);
      if (!pt) lex.fail("cast target must be a pointer type");
      inst = b.cast(src, pt->pointee(), result);
    } else {
      lex.fail_at(op, "unknown opcode " + w);
    }

    // Optional !loc("file", line) suffix.
    if (lex.peek().kind == Tok::kPunct && lex.peek().text == "!") {
      lex.take();
      if (!lex.accept_ident("loc")) lex.fail("expected loc after '!'");
      lex.expect_punct('(');
      Token file = lex.expect(Tok::kString, "file name");
      lex.expect_punct(',');
      Token line = lex.expect(Tok::kNumber, "line number");
      lex.expect_punct(')');
      inst->set_loc(SourceLoc(file.text, static_cast<uint32_t>(line.number)));
    }

    if (!lex.at_end()) lex.fail("trailing tokens");
    if (!result.empty()) {
      if (values.count(result))
        lex.fail("redefinition of %" + result);
      values[result] = inst;
    }
  }

  static BasicBlock* lookup_block(Lexer& lex,
                                  std::map<std::string, BasicBlock*>& blocks,
                                  const std::string& name) {
    auto it = blocks.find(name);
    if (it == blocks.end()) lex.fail("unknown label %" + name);
    return it->second;
  }

  std::vector<std::string> lines_;
  std::unique_ptr<Module> module_;
  std::vector<std::pair<Function*, size_t>> body_start_;
  std::vector<ParseDiagnostic>* diags_ = nullptr;  // null = strict mode
  size_t max_diags_ = 0;
  bool gave_up_ = false;
};

}  // namespace

std::string ParseDiagnostic::str() const {
  std::string s = "line " + std::to_string(line);
  if (col > 0) s += ":" + std::to_string(col);
  return s + ": " + message;
}

std::unique_ptr<Module> parse_module(std::string_view text) {
  return Parser(text).run();
}

TolerantParseResult parse_module_tolerant(std::string_view text,
                                          size_t max_diagnostics) {
  TolerantParseResult r;
  if (max_diagnostics == 0) max_diagnostics = 1;
  r.module = Parser(text, &r.diagnostics, max_diagnostics).run();
  return r;
}

}  // namespace deepmc::ir
