// MIR containers: BasicBlock, Function, Module.
#pragma once

#include <memory>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "ir/instruction.h"

namespace deepmc::ir {

class Function;
class Module;

class BasicBlock {
 public:
  BasicBlock(std::string name, Function* parent)
      : name_(std::move(name)), parent_(parent) {}
  BasicBlock(const BasicBlock&) = delete;
  BasicBlock& operator=(const BasicBlock&) = delete;

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] Function* parent() const { return parent_; }

  Instruction* append(std::unique_ptr<Instruction> inst) {
    inst->set_parent(this);
    insts_.push_back(std::move(inst));
    return insts_.back().get();
  }

  /// Insert before position `pos` (used by the instrumenter).
  Instruction* insert(size_t pos, std::unique_ptr<Instruction> inst) {
    inst->set_parent(this);
    auto it = insts_.insert(insts_.begin() + static_cast<long>(pos),
                            std::move(inst));
    return it->get();
  }

  [[nodiscard]] const std::vector<std::unique_ptr<Instruction>>& instructions()
      const {
    return insts_;
  }
  [[nodiscard]] size_t size() const { return insts_.size(); }
  [[nodiscard]] bool empty() const { return insts_.empty(); }

  [[nodiscard]] Instruction* terminator() const {
    if (insts_.empty() || !insts_.back()->is_terminator()) return nullptr;
    return insts_.back().get();
  }

  /// Successor blocks per the terminator (empty for ret / missing).
  [[nodiscard]] std::vector<BasicBlock*> successors() const;

 private:
  std::string name_;
  Function* parent_;
  std::vector<std::unique_ptr<Instruction>> insts_;
};

class Function {
 public:
  Function(std::string name, const Type* return_type,
           std::vector<std::pair<std::string, const Type*>> params,
           Module* parent);
  Function(const Function&) = delete;
  Function& operator=(const Function&) = delete;

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] const Type* return_type() const { return return_type_; }
  [[nodiscard]] Module* parent() const { return parent_; }

  [[nodiscard]] const std::vector<std::unique_ptr<Argument>>& args() const {
    return args_;
  }
  [[nodiscard]] Argument* arg(size_t i) const { return args_.at(i).get(); }
  [[nodiscard]] size_t arg_count() const { return args_.size(); }

  BasicBlock* create_block(std::string name);
  [[nodiscard]] BasicBlock* entry() const {
    return blocks_.empty() ? nullptr : blocks_.front().get();
  }
  [[nodiscard]] const std::vector<std::unique_ptr<BasicBlock>>& blocks() const {
    return blocks_;
  }
  [[nodiscard]] BasicBlock* find_block(const std::string& name) const;

  /// Declaration-only functions (external; no body).
  [[nodiscard]] bool is_declaration() const { return blocks_.empty(); }

  /// Values owned by the function body (constants created by the builder).
  Value* own(std::unique_ptr<Value> v) {
    owned_.push_back(std::move(v));
    return owned_.back().get();
  }

 private:
  std::string name_;
  const Type* return_type_;
  Module* parent_;
  std::vector<std::unique_ptr<Argument>> args_;
  std::vector<std::unique_ptr<BasicBlock>> blocks_;
  std::vector<std::unique_ptr<Value>> owned_;
};

class Module {
 public:
  explicit Module(std::string name) : name_(std::move(name)) {}
  Module(const Module&) = delete;
  Module& operator=(const Module&) = delete;

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] TypeContext& types() { return types_; }
  [[nodiscard]] const TypeContext& types() const { return types_; }

  Function* create_function(
      std::string name, const Type* return_type,
      std::vector<std::pair<std::string, const Type*>> params);

  [[nodiscard]] Function* find_function(const std::string& name) const;
  [[nodiscard]] const std::vector<std::unique_ptr<Function>>& functions()
      const {
    return funcs_;
  }

 private:
  std::string name_;
  TypeContext types_;
  std::vector<std::unique_ptr<Function>> funcs_;
};

}  // namespace deepmc::ir
