// Textual MIR parser.
//
// Grammar (line-oriented; ';' starts a comment):
//
//   module "name"
//   struct %node { i64, %node*, [4 x i64] }
//   declare i64 @ext(%node*, i64)
//   define void @f(%node* %n) {
//   entry:
//     %p = gep %n, 0 !loc("btree_map.c", 201)
//     store i64 5, %p
//     pm.flush %p, 8
//     pm.fence
//     br label %exit
//   exit:
//     ret
//   }
//
// Pointers to structs not yet defined parse as the untyped `ptr` (this is
// how self-referential structs are expressed; a `cast` restores the type at
// use sites). Parse errors throw ParseError with a line number.
#pragma once

#include <memory>
#include <stdexcept>
#include <string>

#include "ir/module.h"

namespace deepmc::ir {

class ParseError : public std::runtime_error {
 public:
  ParseError(size_t line, const std::string& what)
      : std::runtime_error("line " + std::to_string(line) + ": " + what),
        line_(line) {}
  [[nodiscard]] size_t line() const { return line_; }

 private:
  size_t line_;
};

/// Parse a full module from MIR text. Throws ParseError on malformed input.
std::unique_ptr<Module> parse_module(std::string_view text);

}  // namespace deepmc::ir
