// Textual MIR parser.
//
// Grammar (line-oriented; ';' starts a comment):
//
//   module "name"
//   struct %node { i64, %node*, [4 x i64] }
//   declare i64 @ext(%node*, i64)
//   define void @f(%node* %n) {
//   entry:
//     %p = gep %n, 0 !loc("btree_map.c", 201)
//     store i64 5, %p
//     pm.flush %p, 8
//     pm.fence
//     br label %exit
//   exit:
//     ret
//   }
//
// Pointers to structs not yet defined parse as the untyped `ptr` (this is
// how self-referential structs are expressed; a `cast` restores the type at
// use sites). Parse errors throw ParseError with a line number.
//
// Two entry points share one grammar:
//   * parse_module       — throws ParseError at the first problem (the
//                          historical behavior every existing caller keeps);
//   * parse_module_tolerant — never throws on malformed input: it records a
//                          diagnostic (line, column, message), skips to the
//                          next line, and keeps going, so one bad line does
//                          not hide the errors after it. tests/fuzz/ pins
//                          the crash-free guarantee over a hostile corpus.
#pragma once

#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "ir/module.h"

namespace deepmc::ir {

class ParseError : public std::runtime_error {
 public:
  ParseError(size_t line, const std::string& what)
      : std::runtime_error("line " + std::to_string(line) + ": " + what),
        line_(line),
        message_(what) {}
  ParseError(size_t line, size_t col, const std::string& what)
      : std::runtime_error("line " + std::to_string(line) + ": " + what),
        line_(line),
        col_(col),
        message_(what) {}
  [[nodiscard]] size_t line() const { return line_; }
  /// 1-based column of the offending token; 0 when the error has no
  /// useful column (line-level problems like a missing '}').
  [[nodiscard]] size_t col() const { return col_; }
  /// The message without the "line N: " prefix what() carries.
  [[nodiscard]] const std::string& message() const { return message_; }

 private:
  size_t line_;
  size_t col_ = 0;
  std::string message_;
};

/// One recoverable problem found by parse_module_tolerant.
struct ParseDiagnostic {
  size_t line = 0;
  size_t col = 0;  ///< 1-based; 0 = whole-line problem
  std::string message;

  [[nodiscard]] std::string str() const;
};

/// Result of a tolerant parse. `module` is always non-null; with a
/// non-empty `diagnostics` it reflects only the lines that parsed and may
/// not verify — callers gate on ok() before analyzing it.
struct TolerantParseResult {
  std::unique_ptr<Module> module;
  std::vector<ParseDiagnostic> diagnostics;

  [[nodiscard]] bool ok() const { return diagnostics.empty(); }
};

/// Parse a full module from MIR text. Throws ParseError on malformed input.
std::unique_ptr<Module> parse_module(std::string_view text);

/// Parse with per-line error recovery; collects up to `max_diagnostics`
/// problems instead of throwing. Never throws on malformed input.
TolerantParseResult parse_module_tolerant(std::string_view text,
                                          size_t max_diagnostics = 32);

}  // namespace deepmc::ir
