// MIR type system.
//
// MIR stands in for LLVM IR (see DESIGN.md §2). DeepMC's analyses are
// field-sensitive, so the type system keeps what field sensitivity needs:
// struct layouts with byte offsets, typed pointers, and sized arrays.
// Types are interned in a TypeContext owned by the Module; Type pointers
// are stable for the lifetime of the context and compared by identity.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace deepmc::ir {

class TypeContext;

enum class TypeKind : uint8_t {
  kVoid,
  kInt,      // i1/i8/i16/i32/i64
  kPointer,  // T* (pointee may be Unknown via void*)
  kStruct,   // named struct with fields
  kArray,    // [N x T]
};

class Type {
 public:
  virtual ~Type() = default;

  [[nodiscard]] TypeKind kind() const { return kind_; }
  [[nodiscard]] bool is_void() const { return kind_ == TypeKind::kVoid; }
  [[nodiscard]] bool is_int() const { return kind_ == TypeKind::kInt; }
  [[nodiscard]] bool is_pointer() const { return kind_ == TypeKind::kPointer; }
  [[nodiscard]] bool is_struct() const { return kind_ == TypeKind::kStruct; }
  [[nodiscard]] bool is_array() const { return kind_ == TypeKind::kArray; }

  /// Size in bytes under the MIR layout (natural alignment, like x86-64).
  [[nodiscard]] virtual uint64_t size() const = 0;
  [[nodiscard]] virtual uint64_t alignment() const { return size(); }
  [[nodiscard]] virtual std::string str() const = 0;

 protected:
  explicit Type(TypeKind kind) : kind_(kind) {}

 private:
  TypeKind kind_;
};

class VoidType final : public Type {
 public:
  VoidType() : Type(TypeKind::kVoid) {}
  [[nodiscard]] uint64_t size() const override { return 0; }
  [[nodiscard]] uint64_t alignment() const override { return 1; }
  [[nodiscard]] std::string str() const override { return "void"; }
};

class IntType final : public Type {
 public:
  explicit IntType(uint32_t bits) : Type(TypeKind::kInt), bits_(bits) {}
  [[nodiscard]] uint32_t bits() const { return bits_; }
  [[nodiscard]] uint64_t size() const override { return (bits_ + 7) / 8; }
  [[nodiscard]] std::string str() const override {
    return "i" + std::to_string(bits_);
  }

 private:
  uint32_t bits_;
};

class PointerType final : public Type {
 public:
  /// `pointee` may be null for an untyped pointer ("ptr").
  explicit PointerType(const Type* pointee)
      : Type(TypeKind::kPointer), pointee_(pointee) {}
  [[nodiscard]] const Type* pointee() const { return pointee_; }
  [[nodiscard]] bool is_opaque() const { return pointee_ == nullptr; }
  [[nodiscard]] uint64_t size() const override { return 8; }
  [[nodiscard]] std::string str() const override {
    return pointee_ ? pointee_->str() + "*" : "ptr";
  }

 private:
  const Type* pointee_;
};

class StructType final : public Type {
 public:
  StructType(std::string name, std::vector<const Type*> fields);

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] const std::vector<const Type*>& fields() const {
    return fields_;
  }
  [[nodiscard]] size_t field_count() const { return fields_.size(); }
  [[nodiscard]] const Type* field(size_t i) const { return fields_.at(i); }
  /// Byte offset of field `i` under natural alignment.
  [[nodiscard]] uint64_t field_offset(size_t i) const { return offsets_.at(i); }
  /// Field index containing byte `offset`, or npos.
  [[nodiscard]] size_t field_at_offset(uint64_t offset) const;

  [[nodiscard]] uint64_t size() const override { return size_; }
  [[nodiscard]] uint64_t alignment() const override { return align_; }
  [[nodiscard]] std::string str() const override { return "%" + name_; }

  static constexpr size_t npos = static_cast<size_t>(-1);

 private:
  std::string name_;
  std::vector<const Type*> fields_;
  std::vector<uint64_t> offsets_;
  uint64_t size_ = 0;
  uint64_t align_ = 1;
};

class ArrayType final : public Type {
 public:
  ArrayType(const Type* elem, uint64_t count)
      : Type(TypeKind::kArray), elem_(elem), count_(count) {}
  [[nodiscard]] const Type* element() const { return elem_; }
  [[nodiscard]] uint64_t count() const { return count_; }
  [[nodiscard]] uint64_t size() const override {
    return elem_->size() * count_;
  }
  [[nodiscard]] uint64_t alignment() const override {
    return elem_->alignment();
  }
  [[nodiscard]] std::string str() const override {
    return "[" + std::to_string(count_) + " x " + elem_->str() + "]";
  }

 private:
  const Type* elem_;
  uint64_t count_;
};

/// Interns and owns all types for a Module.
class TypeContext {
 public:
  TypeContext();
  TypeContext(const TypeContext&) = delete;
  TypeContext& operator=(const TypeContext&) = delete;

  [[nodiscard]] const VoidType* void_type() const { return &void_; }
  [[nodiscard]] const IntType* int_type(uint32_t bits);
  [[nodiscard]] const IntType* i1() { return int_type(1); }
  [[nodiscard]] const IntType* i8() { return int_type(8); }
  [[nodiscard]] const IntType* i32() { return int_type(32); }
  [[nodiscard]] const IntType* i64() { return int_type(64); }

  [[nodiscard]] const PointerType* pointer_to(const Type* pointee);
  [[nodiscard]] const PointerType* opaque_ptr() { return pointer_to(nullptr); }

  /// Creates a named struct. Name must be unique in the context.
  const StructType* create_struct(std::string name,
                                  std::vector<const Type*> fields);
  [[nodiscard]] const StructType* find_struct(const std::string& name) const;
  [[nodiscard]] const std::map<std::string, const StructType*>& structs()
      const {
    return struct_by_name_;
  }

  [[nodiscard]] const ArrayType* array_of(const Type* elem, uint64_t count);

 private:
  VoidType void_;
  std::map<uint32_t, std::unique_ptr<IntType>> ints_;
  std::map<const Type*, std::unique_ptr<PointerType>> pointers_;
  std::vector<std::unique_ptr<StructType>> structs_;
  std::map<std::string, const StructType*> struct_by_name_;
  std::map<std::pair<const Type*, uint64_t>, std::unique_ptr<ArrayType>>
      arrays_;
};

}  // namespace deepmc::ir
